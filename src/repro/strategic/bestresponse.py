"""Best-response search over declarations.

For a strategyproof mechanism the truth is always a best response, so a
numeric search over an agent's declaration space must never find a
declaration with strictly higher utility than the truth.  The search
here is a dense grid plus random probes -- deliberately adversarial
rather than clever, since its job is falsification.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.graphs.asgraph import ASGraph
from repro.mechanism.vcg import compute_price_table
from repro.mechanism.welfare import node_utility
from repro.traffic.matrix import TrafficMatrix
from repro.types import Cost, NodeId


@dataclass(frozen=True)
class BestResponse:
    """The outcome of a best-response search for one agent."""

    node: NodeId
    true_cost: Cost
    best_declaration: Cost
    best_utility: Cost
    truthful_utility: Cost
    probes: int

    @property
    def truth_is_best(self) -> bool:
        """Truth weakly maximizes utility (up to float noise)."""
        return self.best_utility <= self.truthful_utility + 1e-9


def best_response(
    graph: ASGraph,
    node: NodeId,
    traffic: TrafficMatrix,
    declared_others: Optional[Mapping[NodeId, Cost]] = None,
    grid_points: int = 15,
    random_probes: int = 10,
    seed: int = 0,
) -> BestResponse:
    """Search *node*'s declaration space for a profitable deviation.

    *declared_others* fixes the opponents' declarations (defaults to
    their true costs); the probed range is ``[0, 3 * true + 5]``.
    """
    rng = random.Random(seed)
    true_cost = graph.cost(node)
    traffic_map = dict(traffic.items())
    base_costs = dict(graph.costs())
    if declared_others:
        base_costs.update(declared_others)
        base_costs[node] = true_cost

    def utility(declaration: Cost) -> Cost:
        costs = dict(base_costs)
        costs[node] = declaration
        table = compute_price_table(graph.with_costs(costs))
        return node_utility(table, traffic_map, node, true_cost=true_cost)

    high = 3.0 * true_cost + 5.0
    probes = [true_cost]
    probes.extend(high * index / (grid_points - 1) for index in range(grid_points))
    probes.extend(rng.uniform(0.0, high) for _ in range(random_probes))

    truthful_utility = utility(true_cost)
    best_declaration = true_cost
    best_utility = truthful_utility
    for declaration in probes:
        value = utility(declaration)
        if value > best_utility:
            best_utility = value
            best_declaration = declaration
    return BestResponse(
        node=node,
        true_cost=true_cost,
        best_declaration=best_declaration,
        best_utility=best_utility,
        truthful_utility=truthful_utility,
        probes=len(probes),
    )
