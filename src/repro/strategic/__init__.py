"""Strategic agents: the game-theoretic side of the reproduction.

The mechanism is designed so that *truthful declaration is a dominant
strategy*.  This package simulates the game: agents with lying
strategies declare costs, the mechanism routes and pays on the
declarations, and utilities are evaluated against the truth.  The
experiments show truthful agents never regret, and best-response search
always lands (weakly) back on the truth.
"""

from repro.strategic.agents import (
    OverstateAgent,
    RandomLiar,
    StrategicAgent,
    TruthfulAgent,
    UnderstateAgent,
)
from repro.strategic.game import GameOutcome, play_declaration_game
from repro.strategic.bestresponse import best_response

__all__ = [
    "OverstateAgent",
    "RandomLiar",
    "StrategicAgent",
    "TruthfulAgent",
    "UnderstateAgent",
    "GameOutcome",
    "play_declaration_game",
    "best_response",
]
