"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError`, so callers
can catch one type when they do not care about the detail.  Each concrete
subtype maps onto a modelling assumption from the paper (biconnectivity,
reachability, well-formed declarations) or onto a protocol misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GraphError(ReproError):
    """A malformed AS graph: unknown nodes, self-loops, duplicate links."""


class NotBiconnectedError(GraphError):
    """The AS graph is not biconnected.

    Theorem 1 requires biconnectivity: without it, some k-avoiding path
    does not exist and the VCG payment to the cut node is undefined (the
    node could charge a monopoly price).
    """

    def __init__(self, articulation_points=None, message=None):
        self.articulation_points = tuple(articulation_points or ())
        if message is None:
            if self.articulation_points:
                message = (
                    "AS graph is not biconnected; articulation points: "
                    f"{sorted(self.articulation_points)}"
                )
            else:
                message = "AS graph is not biconnected"
        super().__init__(message)


class DisconnectedGraphError(GraphError):
    """The AS graph is not even connected."""


class UnreachableError(ReproError):
    """No path exists between the requested source and destination."""

    def __init__(self, source, destination, avoiding=None):
        self.source = source
        self.destination = destination
        self.avoiding = avoiding
        detail = f"no path from {source} to {destination}"
        if avoiding is not None:
            detail += f" avoiding {avoiding}"
        super().__init__(detail)


class TrafficMatrixError(ReproError):
    """A malformed traffic matrix (negative intensity, unknown node...)."""


class MechanismError(ReproError):
    """A pricing-mechanism invariant was violated."""


class ProtocolError(ReproError):
    """Misuse of the BGP or FPSS protocol engines (e.g. stepping a
    network that was never initialized, or sending to a non-neighbor)."""


class ConvergenceError(ProtocolError):
    """A protocol failed to converge within its stage budget."""

    def __init__(self, stages, limit, message=None):
        self.stages = stages
        self.limit = limit
        super().__init__(
            message
            or f"protocol did not converge within {limit} stages "
            f"(ran {stages})"
        )


class EngineError(ReproError):
    """A routing/pricing engine was misused or misconfigured.

    Raised for unknown engine names in the
    :mod:`repro.routing.engines` registry, for capability mismatches
    (e.g. asking a cost-only engine for selected paths), and for
    invalid worker-pool configuration of the parallel engine.
    """


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class TraceError(ReproError):
    """A recorded observability trace (:mod:`repro.obs.trace`) is
    malformed: missing/bad meta line, invalid JSON, unknown event kind,
    or events missing required fields for their kind."""


class SanitizerError(ReproError):
    """A runtime invariant check (:mod:`repro.devtools.sanitize`) failed.

    Raised only while the sanitizer is enabled; it always indicates an
    implementation bug (or a deliberately seeded corruption in the
    sanitizer's own tests), never a property of the protocol.
    """

    def __init__(self, check: str, detail: str):
        self.check = check
        self.detail = detail
        super().__init__(f"[sanitize:{check}] {detail}")
