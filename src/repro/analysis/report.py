"""Plain-text tables for experiment output.

Every experiment renders its results as a :class:`Table` -- fixed
headers, typed rows, and a monospace formatter -- so that the CLI, the
benchmarks, and EXPERIMENTS.md all print identical artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A fixed-width text table."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        cells = [[_format_cell(value) for value in row] for row in self.rows]
        widths = [len(header) for header in self.headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(values: Iterable[str]) -> str:
            return "  ".join(
                value.ljust(width) for value, width in zip(values, widths)
            ).rstrip()

        parts = [self.title, "=" * len(self.title)]
        parts.append(line(self.headers))
        parts.append(line("-" * width for width in widths))
        parts.extend(line(row) for row in cells)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def to_markdown(self) -> str:
        """GitHub-flavored markdown rendering (for EXPERIMENTS.md)."""
        parts = [f"### {self.title}", ""]
        parts.append("| " + " | ".join(self.headers) + " |")
        parts.append("|" + "|".join(" --- " for _ in self.headers) + "|")
        for row in self.rows:
            parts.append(
                "| " + " | ".join(_format_cell(value) for value in row) + " |"
            )
        for note in self.notes:
            parts.append("")
            parts.append(f"*{note}*")
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
