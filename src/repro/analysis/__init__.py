"""Analysis and reporting helpers shared by the experiment harness."""

from repro.analysis.report import Table
from repro.analysis.convergence_stats import convergence_row, convergence_sweep
from repro.analysis.frugality import frugality_row, frugality_sweep

__all__ = [
    "Table",
    "convergence_row",
    "convergence_sweep",
    "frugality_row",
    "frugality_sweep",
]
