"""Convergence measurements across topology families (experiment E5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.convergence import convergence_bound
from repro.core.price_node import UpdateMode
from repro.core.protocol import distributed_mechanism, verify_against_centralized
from repro.graphs.asgraph import ASGraph


@dataclass(frozen=True)
class ConvergenceRow:
    """One measured instance for the Theorem 2 table."""

    family: str
    n: int
    m: int
    d: int
    d_prime: int
    bound: int
    stages_routes_only: int
    stages_with_prices: int
    within_bound: bool
    prices_correct: bool


def convergence_row(
    family: str,
    graph: ASGraph,
    mode: UpdateMode = UpdateMode.MONOTONE,
) -> ConvergenceRow:
    """Measure one instance: plain-BGP stages, FPSS stages, bound, and
    end-to-end price correctness."""
    from repro.bgp.engine import SynchronousEngine

    bound = convergence_bound(graph)

    plain = SynchronousEngine(graph)
    plain.initialize()
    plain_report = plain.run()

    result = distributed_mechanism(graph, mode=mode)
    verification = verify_against_centralized(result)

    return ConvergenceRow(
        family=family,
        n=graph.num_nodes,
        m=graph.num_edges,
        d=bound.d,
        d_prime=bound.d_prime,
        bound=bound.stages,
        stages_routes_only=plain_report.stages,
        stages_with_prices=result.stages,
        within_bound=result.stages <= bound.stages,
        prices_correct=verification.ok,
    )


def convergence_sweep(
    instances: Iterable[tuple],
    mode: UpdateMode = UpdateMode.MONOTONE,
) -> List[ConvergenceRow]:
    """Measure many ``(family_name, graph)`` instances."""
    return [convergence_row(family, graph, mode=mode) for family, graph in instances]
