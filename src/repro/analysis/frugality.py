"""Overpayment measurements across topology families (experiment E7)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.graphs.asgraph import ASGraph
from repro.mechanism.overpayment import overpayment_stats
from repro.mechanism.vcg import compute_price_table
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class FrugalityRow:
    """One instance for the Section 7 overcharging table."""

    family: str
    n: int
    m: int
    mean_ratio: float
    median_ratio: float
    max_ratio: float
    aggregate_ratio: float


def frugality_row(
    family: str,
    graph: ASGraph,
    traffic: Optional[TrafficMatrix] = None,
) -> FrugalityRow:
    table = compute_price_table(graph)
    stats = overpayment_stats(
        table, traffic=dict(traffic.items()) if traffic is not None else None
    )
    return FrugalityRow(
        family=family,
        n=graph.num_nodes,
        m=graph.num_edges,
        mean_ratio=stats.mean_ratio,
        median_ratio=stats.median_ratio,
        max_ratio=stats.max_ratio,
        aggregate_ratio=stats.aggregate_ratio,
    )


def frugality_sweep(
    instances: Iterable[tuple],
    traffic_for=None,
) -> List[FrugalityRow]:
    """Measure many ``(family_name, graph)`` instances; *traffic_for*
    optionally maps a graph to its traffic matrix."""
    rows = []
    for family, graph in instances:
        traffic = traffic_for(graph) if traffic_for is not None else None
        rows.append(frugality_row(family, graph, traffic=traffic))
    return rows
