"""Destination-rooted generalized Dijkstra over canonical route keys.

For a destination ``j``, :func:`route_tree` computes, for every other
node ``i``, the minimum-key path from ``i`` to ``j`` (key = canonical
``(cost, hops, path)`` order).  Because the key order is suffix
consistent, the selected paths form the loop-free tree ``T(j)`` the
paper's Section 6 relies on; the tree is returned explicitly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.exceptions import UnreachableError
from repro.graphs.asgraph import ASGraph, GraphLike
from repro.routing.tiebreak import RouteKey, route_key
from repro.types import Cost, NodeId, PathTuple


@dataclass(frozen=True)
class RouteTree:
    """The selected lowest-cost paths toward one destination.

    Attributes
    ----------
    destination:
        The root ``j`` of the tree.
    parents:
        ``i -> next hop of i toward j`` for every reachable ``i != j``.
        (In the paper's tree vocabulary the next hop is ``i``'s *parent*
        in ``T(j)``.)
    _paths / _costs:
        Full selected path and transit cost per source.
    """

    destination: NodeId
    parents: Dict[NodeId, NodeId]
    _paths: Dict[NodeId, PathTuple] = field(repr=False)
    _costs: Dict[NodeId, Cost] = field(repr=False)

    def sources(self) -> Tuple[NodeId, ...]:
        """Nodes with a selected route to the destination (excl. root)."""
        return tuple(sorted(self._paths))

    def has_route(self, source: NodeId) -> bool:
        return source in self._paths or source == self.destination

    def path(self, source: NodeId) -> PathTuple:
        """Selected path from *source* to the destination (inclusive)."""
        if source == self.destination:
            return (source,)
        try:
            return self._paths[source]
        except KeyError:
            raise UnreachableError(source, self.destination) from None

    def cost(self, source: NodeId) -> Cost:
        """Transit cost of the selected path from *source*."""
        if source == self.destination:
            return 0.0
        try:
            return self._costs[source]
        except KeyError:
            raise UnreachableError(source, self.destination) from None

    def hops(self, source: NodeId) -> int:
        """Number of AS hops (edges) on the selected path."""
        return len(self.path(source)) - 1

    def parent(self, source: NodeId) -> NodeId:
        """``source``'s parent (next hop) in ``T(j)``."""
        if source == self.destination:
            raise UnreachableError(source, self.destination)
        try:
            return self.parents[source]
        except KeyError:
            raise UnreachableError(source, self.destination) from None

    def children(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Nodes whose selected next hop is *node*."""
        return tuple(sorted(i for i, p in self.parents.items() if p == node))

    def on_path(self, k: NodeId, source: NodeId) -> bool:
        """The indicator ``I_k(c; source, destination)``: whether ``k``
        is a *transit* node on the selected path from *source*."""
        if not self.has_route(source) or source == self.destination:
            return False
        path = self.path(source)
        return k in path[1:-1]

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.sources())


def route_tree(graph: GraphLike, destination: NodeId) -> RouteTree:
    """Compute the selected-LCP tree ``T(destination)``.

    Runs generalized Dijkstra rooted at the destination; relaxation
    accumulates cost destination-first (``dist(v) = dist(u) + c_u`` for
    the hop ``v -> u`` with ``u`` nearer the root), which keeps costs
    bit-identical to BGP's hop-by-hop accumulation.  Unreachable nodes
    simply have no entry (queries raise :class:`UnreachableError`).

    *graph* may be a real :class:`ASGraph` or a copy-free
    :class:`~repro.graphs.asgraph.MaskedGraphView` (the k-avoiding
    sweep's representation of ``G - k``); only read access is used.
    """
    if destination not in graph:
        raise UnreachableError(destination, destination)
    best: Dict[NodeId, RouteKey] = {destination: route_key(0.0, (destination,))}
    finalized: Dict[NodeId, RouteKey] = {}
    heap = [(best[destination], destination)]
    while heap:
        key, node = heapq.heappop(heap)
        if node in finalized:
            continue
        if key != best.get(node):
            continue  # stale heap entry
        finalized[node] = key
        cost, _hops, path = key
        hop_cost = 0.0 if node == destination else graph.cost(node)
        for neighbor in graph.neighbors(node):
            if neighbor in finalized:
                continue
            if neighbor in path:
                continue  # keep candidates simple
            candidate = route_key(cost + hop_cost, (neighbor,) + path)
            incumbent = best.get(neighbor)
            if incumbent is None or candidate < incumbent:
                best[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))

    parents: Dict[NodeId, NodeId] = {}
    paths: Dict[NodeId, PathTuple] = {}
    costs: Dict[NodeId, Cost] = {}
    for node, (cost, _hops, path) in finalized.items():
        if node == destination:
            continue
        parents[node] = path[1]
        paths[node] = path
        costs[node] = cost
    return RouteTree(
        destination=destination,
        parents=parents,
        _paths=paths,
        _costs=costs,
    )


def lowest_cost(graph: ASGraph, source: NodeId, destination: NodeId) -> Tuple[Cost, PathTuple]:
    """Convenience: the selected LCP and its cost for a single pair."""
    tree = route_tree(graph, destination)
    return tree.cost(source), tree.path(source)
