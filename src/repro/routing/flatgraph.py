"""Flat CSR routing core: one-shot arrays, O(deg(k) + n) node masking.

The vectorized engines reduce node-cost routing to directed edge
weights ``w(u -> v) = c_v`` and hand the result to
``scipy.sparse.csgraph``.  Before this module, that reduction was
rebuilt from Python edge loops once *per transit node k* of the price
sweep -- O(m) interpreter work times the number of distinct transit
nodes, the dominant constant factor at n >= 500.

:class:`FlatGraph` builds the reduction **once per graph epoch** with
numpy primitives (no per-edge Python loops) and implements ``G - k`` by
*masking* the flat arrays instead of reconstructing them:

* the directed edge list is materialized as canonical CSR arrays
  (``indptr`` / ``indices`` / ``weights``) plus the node-cost vector;
* a CSC-style position index (``in_ptr`` / ``in_positions``) records,
  for every node ``k``, where the stored entries of ``k``'s *incoming*
  edges live in the flat ``weights`` array;
* :meth:`FlatGraph.masked` overwrites exactly those ``deg(k)`` stored
  weights with ``+inf`` (an infinite-weight edge is never relaxed onto
  a finite path, so ``k`` becomes unreachable -- equivalent to deleting
  the node for every source/destination other than ``k`` itself) and
  restores the saved values on exit.  Masking is O(deg(k)); nothing of
  size O(m) or O(n^2) is allocated per ``k``.

Zero-cost nodes round-trip exactly: a zero transit cost becomes a
*stored* zero in the CSR arrays (``csgraph`` honors stored zeros of
sparse input as real zero-weight edges), construction verifies that no
stored entry was dropped, and :meth:`FlatGraph.masked` restores the
saved weights verbatim -- a masked-and-unmasked zero is still a stored
zero.  The regression tests pin both round-trips.

Only the endpoints matter for the price sweep's masking direction:
``p^k_ij`` is demanded only for ``k`` strictly interior to a selected
path, so ``i != k != j`` always holds and blocking *entry* into ``k``
suffices; ``k``'s outgoing entries stay untouched.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from repro.exceptions import EngineError, GraphError
from repro.graphs.asgraph import ASGraph
from repro.types import NodeId

__all__ = ["FlatGraph", "build_flat_graph"]


@dataclass
class FlatGraph:
    """The ``w(u -> v) = c_v`` reduction as flat CSR arrays.

    Attributes
    ----------
    node_ids:
        Sorted node ids; position in this array is the dense index used
        by every other array.
    index:
        ``node id -> dense index`` (the same mapping as
        :meth:`repro.graphs.asgraph.ASGraph.index_of`).
    costs:
        Per-node transit costs ``c_k`` in dense-index order.
    indptr / indices / weights:
        Canonical CSR of the directed reduction: row ``u`` stores the
        out-edges ``u -> v`` with weight ``c_v``; columns are sorted
        within each row.  ``weights`` is the only mutable array (the
        masking scratch space).
    in_ptr / in_positions:
        Incoming-edge position index: ``in_positions[in_ptr[k] :
        in_ptr[k + 1]]`` are the offsets into ``weights`` holding the
        stored entries of edges ``* -> k``.
    """

    node_ids: np.ndarray
    index: Dict[NodeId, int]
    costs: np.ndarray = field(repr=False)
    indptr: np.ndarray = field(repr=False)
    indices: np.ndarray = field(repr=False)
    weights: np.ndarray = field(repr=False)
    in_ptr: np.ndarray = field(repr=False)
    in_positions: np.ndarray = field(repr=False)

    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.shape[0])

    @property
    def num_stored(self) -> int:
        """Stored directed entries (twice the undirected link count)."""
        return int(self.indices.shape[0])

    def matrix(self) -> csr_matrix:
        """The reduction as a ``csr_matrix`` sharing this object's
        arrays -- masking mutates the matrix in place, by design."""
        n = self.num_nodes
        matrix = csr_matrix(
            (self.weights, self.indices, self.indptr),
            shape=(n, n),
            copy=False,
        )
        if matrix.nnz != self.num_stored:
            raise EngineError(
                "CSR view dropped stored entries "
                f"({matrix.nnz} kept of {self.num_stored}); zero-cost "
                "nodes would no longer round-trip exactly"
            )
        return matrix

    def in_edge_positions(self, dense_k: int) -> np.ndarray:
        """Offsets into :attr:`weights` of the edges entering *dense_k*."""
        return self.in_positions[self.in_ptr[dense_k] : self.in_ptr[dense_k + 1]]

    def degree(self, dense_k: int) -> int:
        return int(self.in_ptr[dense_k + 1] - self.in_ptr[dense_k])

    @contextmanager
    def masked(self, dense_k: int) -> Iterator[csr_matrix]:
        """``G - k`` by in-place masking, O(deg(k)) to enter and exit.

        Within the context the shared :meth:`matrix` has every edge
        *into* ``k`` stored as ``+inf`` (never relaxed onto a finite
        path, hence equivalent to node deletion for all sources and
        destinations other than ``k``); on exit the saved weights --
        including stored zeros -- are restored verbatim.
        """
        positions = self.in_edge_positions(dense_k)
        saved = self.weights[positions].copy()
        self.weights[positions] = np.inf
        try:
            yield self.matrix()
        finally:
            self.weights[positions] = saved

    def dense_pair(self, source: NodeId, destination: NodeId) -> Tuple[int, int]:
        """Dense indices of a node pair (convenience for callers)."""
        try:
            return self.index[source], self.index[destination]
        except KeyError as exc:
            raise GraphError(f"unknown node {exc.args[0]}") from None


def build_flat_graph(graph: ASGraph) -> FlatGraph:
    """One-shot numpy construction of the flat reduction.

    Everything O(m) runs inside numpy: the undirected edge list is
    converted to arrays wholesale, symmetrized, and lexsorted into
    canonical CSR order; the incoming-edge position index is a stable
    argsort of the head column.  The only Python-level iteration is the
    O(n) node scan for ids and costs.
    """
    node_ids = np.asarray(graph.nodes, dtype=np.int64)
    n = int(node_ids.shape[0])
    index = graph.index_of()
    cost_map = graph.costs()
    costs = np.fromiter(
        (cost_map[node] for node in graph.nodes), dtype=np.float64, count=n
    )

    if graph.num_edges:
        links = np.asarray(graph.edges, dtype=np.int64).reshape(-1, 2)
        # Node ids need not be dense; translate through the sorted id
        # array (exact because every edge endpoint is a declared node).
        links = np.searchsorted(node_ids, links)
        tails = np.concatenate([links[:, 0], links[:, 1]])
        heads = np.concatenate([links[:, 1], links[:, 0]])
    else:
        tails = np.empty(0, dtype=np.int64)
        heads = np.empty(0, dtype=np.int64)

    order = np.lexsort((heads, tails))  # row-major, sorted columns per row
    # int32 index arrays match csgraph's internal index type, so every
    # masked solve reuses them without a per-call conversion copy.
    indices = heads[order].astype(np.int32)
    weights = costs[indices]  # fancy indexing: a fresh, mutable array
    indptr = np.zeros(n + 1, dtype=np.int32)
    np.cumsum(np.bincount(tails, minlength=n), out=indptr[1:])

    # CSC-style index of incoming entries: stable argsort groups the
    # stored positions by head node without disturbing row order.
    in_positions = np.argsort(indices, kind="stable")
    in_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(indices, minlength=n), out=in_ptr[1:])

    flat = FlatGraph(
        node_ids=node_ids,
        index=index,
        costs=costs,
        indptr=indptr,
        indices=indices,
        weights=weights,
        in_ptr=in_ptr,
        in_positions=in_positions,
    )
    if flat.num_stored != 2 * graph.num_edges:
        raise EngineError(
            "flat CSR construction dropped stored entries "
            f"({flat.num_stored} kept of {2 * graph.num_edges}); "
            "zero-cost nodes would no longer round-trip exactly"
        )
    flat.matrix()  # verify the CSR view keeps explicit zeros
    return flat
