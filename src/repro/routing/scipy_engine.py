"""Deprecated import shim for the vectorized engine.

The vectorized ``scipy.sparse.csgraph`` entry points moved into the
engine registry package as :mod:`repro.routing.engines.vectorized`;
select them through ``engine="scipy"`` on
:func:`repro.routing.allpairs.all_pairs_lcp` /
:func:`repro.mechanism.vcg.compute_price_table`, or import the module
functions from their new home.  This module re-exports the public
surface unchanged and warns on import; it will be removed in a future
release.
"""

from __future__ import annotations

import warnings

from repro.routing.engines.vectorized import (  # noqa: F401 - re-exports
    _directed_weight_matrix,
    all_pairs_costs,
    avoiding_costs_matrix,
    vcg_price_matrices,
    vcg_price_rows,
)

__all__ = [
    "all_pairs_costs",
    "avoiding_costs_matrix",
    "vcg_price_matrices",
    "vcg_price_rows",
]

warnings.warn(
    "repro.routing.scipy_engine is deprecated; import from "
    "repro.routing.engines.vectorized or select the engine via "
    'engine="scipy" instead',
    DeprecationWarning,
    stacklevel=2,
)
