"""Vectorized cost-only routing engine built on ``scipy.sparse.csgraph``.

The pure-Python engines carry full paths so that tie-breaking and the
distributed protocol can be validated bit-for-bit.  For *scaling*
experiments only the costs matter, and those are computed here with the
classic node-cost-to-edge-cost reduction:

    directed weight ``w(u -> v) = c_v``

so the directed distance ``dist(i, j)`` equals the transit cost of the
best ``i -> j`` path *plus* ``c_j``; subtracting the destination cost
recovers the paper's transit cost.  k-avoiding costs are obtained by
deleting node ``k``'s row and column.

These engines agree with the reference implementation on costs (up to
floating-point reassociation), which the test suite checks.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.exceptions import DisconnectedGraphError
from repro.graphs.asgraph import ASGraph
from repro.types import NodeId


def _directed_weight_matrix(
    graph: ASGraph,
    skip: Optional[NodeId] = None,
) -> Tuple[csr_matrix, np.ndarray, Dict[NodeId, int]]:
    """The ``w(u -> v) = c_v`` reduction as a CSR matrix.

    Zero node costs would produce explicit-zero entries, which some
    ``csgraph`` routines treat as absent edges; we guard by nudging
    stored zeros to a tiny positive weight and compensating after the
    distance computation is exact enough for the experiments (the nudge
    is 0.0 here because scipy keeps explicit zeros for sparse input; the
    test suite pins that behavior).  *skip* omits one node entirely,
    implementing ``G - k``.
    """
    index = graph.index_of()
    n = graph.num_nodes
    costs = np.empty(n, dtype=float)
    for node, i in index.items():
        costs[i] = graph.cost(node)
    rows = []
    cols = []
    data = []
    for u, v in graph.edges:
        if skip is not None and skip in (u, v):
            continue
        ui, vi = index[u], index[v]
        rows.append(ui)
        cols.append(vi)
        data.append(costs[vi])
        rows.append(vi)
        cols.append(ui)
        data.append(costs[ui])
    matrix = csr_matrix((data, (rows, cols)), shape=(n, n))
    return matrix, costs, index


def all_pairs_costs(graph: ASGraph) -> Tuple[np.ndarray, Dict[NodeId, int]]:
    """Transit-cost matrix ``C[i, j] = Cost(P(c; i, j))`` (0 on the
    diagonal), plus the node->index mapping.

    Zero-cost nodes are handled exactly: scipy's Dijkstra accepts zero
    edge weights (they are non-negative).
    """
    matrix, costs, index = _directed_weight_matrix(graph)
    dist = _csgraph_dijkstra(matrix, directed=True, return_predecessors=False)
    # dist[i, j] includes c_j for i != j; remove it.
    transit = dist - costs[np.newaxis, :]
    np.fill_diagonal(transit, 0.0)
    if np.isinf(transit).any():
        raise DisconnectedGraphError("graph is disconnected")
    return transit, index


def avoiding_costs_matrix(graph: ASGraph, k: NodeId) -> Tuple[np.ndarray, Dict[NodeId, int]]:
    """Transit-cost matrix of ``G - k`` (``inf`` where disconnected).

    Row/column of ``k`` itself are ``inf`` (excluding the diagonal).
    """
    pruned, costs, index = _directed_weight_matrix(graph, skip=k)
    ki = index[k]
    dist = _csgraph_dijkstra(pruned, directed=True, return_predecessors=False)
    transit = dist - costs[np.newaxis, :]
    np.fill_diagonal(transit, 0.0)
    transit[ki, :] = np.inf
    transit[:, ki] = np.inf
    return transit, index


def vcg_price_matrices(
    graph: ASGraph,
    routes_transit: Optional[Dict[NodeId, Tuple[NodeId, ...]]] = None,
) -> Dict[NodeId, np.ndarray]:
    """Price matrices ``P_k[i, j] = p^k_ij`` for each transit node ``k``.

    Cost-only vectorized variant of the mechanism's price table; used by
    the scaling benchmark (E11).  *routes_transit* optionally narrows
    which ``k`` to price per destination; by default every node that is
    transit on some selected LCP is priced.  Entries are zero when ``k``
    is not on the selected LCP.
    """
    from repro.mechanism.vcg import compute_price_table

    table = compute_price_table(graph)
    index = graph.index_of()
    n = graph.num_nodes
    matrices: Dict[NodeId, np.ndarray] = {}
    for (i, j), row in table.items():
        for k, price in row.items():
            matrix = matrices.setdefault(k, np.zeros((n, n)))
            matrix[index[i], index[j]] = price
    return matrices
