"""Path helpers and the canonical cost-accumulation convention.

Floating-point addition is not associative, so two components that sum
the same transit costs in different orders can disagree on the last bit
and then *break ties differently*, which would make the distributed
protocol pick different routes than the centralized reference.  To rule
this out, every component in the library accumulates path costs **from
the destination side**: for a path ``(i, v_s, ..., v_1, j)`` the cost is

    ``((c_{v_1} + c_{v_2}) + ...) + c_{v_s}``

This is exactly the order in which destination-rooted Dijkstra relaxes
and in which BGP advertisements accumulate cost hop by hop, so all
engines produce bit-identical costs.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.exceptions import GraphError
from repro.types import Cost, NodeId, PathTuple


def transit_cost(cost_of: Callable[[NodeId], Cost], path: Sequence[NodeId]) -> Cost:
    """Cost of *path*: sum of intermediate node costs, destination-first.

    *cost_of* maps a node to its declared cost.  Endpoints contribute
    nothing.  A two-node path costs exactly ``0.0``.
    """
    if len(path) < 2:
        raise GraphError(f"path must have at least two nodes, got {list(path)}")
    total = 0.0
    for node in reversed(path[1:-1]):
        total += cost_of(node)
    return total


def validate_path(path: Sequence[NodeId], source: NodeId, destination: NodeId) -> PathTuple:
    """Check that *path* is a simple path from *source* to *destination*
    and return it as a tuple.  Adjacency is *not* checked here (use
    :meth:`ASGraph.path_cost` for that); this validates shape only."""
    path = tuple(path)
    if len(path) < 2:
        raise GraphError(f"path must have at least two nodes, got {list(path)}")
    if path[0] != source:
        raise GraphError(f"path starts at {path[0]}, expected {source}")
    if path[-1] != destination:
        raise GraphError(f"path ends at {path[-1]}, expected {destination}")
    if len(set(path)) != len(path):
        raise GraphError(f"path revisits a node: {list(path)}")
    return path


def transit_nodes(path: Sequence[NodeId]) -> PathTuple:
    """The intermediate nodes of *path* (those with ``I_k = 1``)."""
    return tuple(path[1:-1])
