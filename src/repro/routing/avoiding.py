"""Lowest-cost k-avoiding paths ``P_{-k}(c; i, j)``.

The VCG price paid to a transit node ``k`` on the LCP from ``i`` to ``j``
is ``c_k + Cost(P_{-k}(c; i, j)) - Cost(P(c; i, j))`` (Eq. 1 of the
paper), so computing prices reduces to computing lowest-cost paths in
``G - k``.  The batched form -- one destination-rooted Dijkstra in
``G - k`` serves *all* sources at once -- is what makes the centralized
all-pairs price table tractable (O(n) Dijkstras per destination instead
of O(n^2)).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.exceptions import NotBiconnectedError, UnreachableError
from repro.graphs.asgraph import ASGraph
from repro.routing.dijkstra import RouteTree, route_tree
from repro.types import Cost, NodeId, PathTuple


def avoiding_tree(graph: ASGraph, destination: NodeId, k: NodeId) -> RouteTree:
    """The selected lowest-cost paths toward *destination* in ``G - k``.

    Sources disconnected by the removal simply have no entry; queries on
    them raise :class:`UnreachableError` (on a biconnected graph this
    never happens).

    ``G - k`` is realized as a copy-free
    :class:`~repro.graphs.asgraph.MaskedGraphView`: the batched price
    sweep builds one avoiding tree per (destination, k) pair, so
    allocating a full :meth:`~repro.graphs.asgraph.ASGraph.without_node`
    copy each time would dominate the sweep's running time.
    """
    if k == destination:
        raise UnreachableError(destination, destination, avoiding=k)
    return route_tree(graph.masked_without_node(k), destination)


def avoiding_cost(graph: ASGraph, source: NodeId, destination: NodeId, k: NodeId) -> Cost:
    """``Cost(P_{-k}(c; source, destination))``."""
    if k in (source, destination):
        raise UnreachableError(source, destination, avoiding=k)
    tree = avoiding_tree(graph, destination, k)
    try:
        return tree.cost(source)
    except UnreachableError:
        raise UnreachableError(source, destination, avoiding=k) from None


def avoiding_path(graph: ASGraph, source: NodeId, destination: NodeId, k: NodeId) -> PathTuple:
    """The selected lowest-cost k-avoiding path itself."""
    if k in (source, destination):
        raise UnreachableError(source, destination, avoiding=k)
    tree = avoiding_tree(graph, destination, k)
    try:
        return tree.path(source)
    except UnreachableError:
        raise UnreachableError(source, destination, avoiding=k) from None


def avoiding_costs_for_destination(
    graph: ASGraph,
    destination: NodeId,
    transit_nodes: Tuple[NodeId, ...],
) -> Dict[NodeId, RouteTree]:
    """Batched k-avoiding trees for one destination.

    Returns ``k -> RouteTree`` of ``G - k`` rooted at *destination* for
    each ``k`` in *transit_nodes*.  This is the workhorse of the
    centralized price table.
    """
    trees: Dict[NodeId, RouteTree] = {}
    for k in transit_nodes:
        if k == destination:
            continue
        trees[k] = avoiding_tree(graph, destination, k)
    return trees


def max_avoiding_hops(graph: ASGraph) -> int:
    """The quantity ``d'`` of Theorem 2: the maximum hop count over the
    lowest-cost k-avoiding paths for every pair and every transit node
    ``k`` on the pair's selected LCP.

    Raises :class:`NotBiconnectedError` if some avoiding path does not
    exist, since then the mechanism itself is undefined.
    """
    from repro.routing.allpairs import all_pairs_lcp

    routes = all_pairs_lcp(graph)
    best = 0
    for destination in graph.nodes:
        tree = routes.tree(destination)
        transit = routes.transit_nodes(destination)
        detours = avoiding_costs_for_destination(graph, destination, transit)
        for source in tree.sources():
            for k in tree.path(source)[1:-1]:
                detour_tree = detours[k]
                if not detour_tree.has_route(source):
                    raise NotBiconnectedError(
                        message=(
                            f"no {k}-avoiding path from {source} to "
                            f"{destination}; graph is not biconnected"
                        )
                    )
                best = max(best, detour_tree.hops(source))
    return best
