"""All-pairs lowest-cost routes: one route tree per destination.

This realizes the paper's "n^2 LCP instances" view (Sect. 1) as ``n``
destination trees, which is also exactly the state BGP distributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple

import repro.obs as obs_mod
from repro.devtools import sanitize as sanitize_checks
from repro.exceptions import DisconnectedGraphError
from repro.graphs.asgraph import ASGraph
from repro.obs import names as metric_names
from repro.routing.dijkstra import RouteTree, route_tree
from repro.types import Cost, NodeId, PathTuple

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.routing.engines import EngineSpec


@dataclass(frozen=True)
class AllPairsRoutes:
    """Selected LCPs for every ordered source-destination pair."""

    graph: ASGraph
    trees: Dict[NodeId, RouteTree]

    @property
    def paths(self) -> Dict[Tuple[NodeId, NodeId], PathTuple]:
        """``(source, destination) -> selected path`` for all pairs."""
        result: Dict[Tuple[NodeId, NodeId], PathTuple] = {}
        for destination, tree in self.trees.items():
            for source in tree.sources():
                result[(source, destination)] = tree.path(source)
        return result

    def tree(self, destination: NodeId) -> RouteTree:
        return self.trees[destination]

    def path(self, source: NodeId, destination: NodeId) -> PathTuple:
        return self.trees[destination].path(source)

    def cost(self, source: NodeId, destination: NodeId) -> Cost:
        return self.trees[destination].cost(source)

    def hops(self, source: NodeId, destination: NodeId) -> int:
        return self.trees[destination].hops(source)

    def indicator(self, k: NodeId, source: NodeId, destination: NodeId) -> bool:
        """``I_k(c; source, destination)`` from Section 3."""
        return self.trees[destination].on_path(k, source)

    def transit_nodes(self, destination: NodeId) -> Tuple[NodeId, ...]:
        """All nodes appearing as transit on some selected path toward
        *destination* -- the ``k`` values whose prices matter there."""
        tree = self.trees[destination]
        transit = set()
        for source in tree.sources():
            transit.update(tree.path(source)[1:-1])
        return tuple(sorted(transit))

    def max_hops(self) -> int:
        """The quantity ``d`` of Theorem 2 for this instance."""
        return max(
            (tree.hops(source) for tree in self.trees.values() for source in tree.sources()),
            default=0,
        )

    def __iter__(self) -> Iterator[Tuple[NodeId, NodeId]]:
        return iter(sorted(self.paths))


def all_pairs_lcp(
    graph: ASGraph,
    *,
    engine: Optional["EngineSpec"] = None,
    sanitize: Optional[bool] = None,
    obs: Optional[obs_mod.Obs] = None,
) -> AllPairsRoutes:
    """Compute selected LCPs for all ordered pairs.

    Raises :class:`DisconnectedGraphError` if any pair is unreachable;
    the paper's model assumes (at least) connectivity.

    Keyword-only knobs (same names, order, and defaults as
    :func:`repro.mechanism.vcg.compute_price_table`):

    *engine* selects a registered backend by name or instance from
    :mod:`repro.routing.engines`; the default (``None`` or
    ``"reference"``) is the serial pure-Python reference path below.
    Cost-only engines raise :class:`~repro.exceptions.EngineError`.

    *sanitize* overrides the global sanitizer toggle for this call:
    ``True`` re-verifies every selected route against a fresh Dijkstra
    (:func:`repro.devtools.sanitize.check_lcp`), ``False`` skips the
    check, ``None`` (default) follows the global toggle.

    *obs* names an explicit :class:`repro.obs.Obs` observer; ``None``
    reports to the global default observer iff observability is
    enabled.  Observed runs execute under a ``routing.all_pairs`` span
    and count ``routing.route_trees``.
    """
    check = sanitize_checks.enabled() if sanitize is None else bool(sanitize)
    observer = obs_mod.active(obs)
    if engine is not None and engine != "reference":
        from repro.routing.engines import resolve_engine

        resolved = resolve_engine(engine)
        if observer is None:
            routes = resolved.all_pairs(graph, obs=obs)
        else:
            with observer.span(metric_names.SPAN_ALL_PAIRS, engine=resolved.name):
                routes = resolved.all_pairs(graph, obs=obs)
    elif observer is None:
        routes = _all_pairs_reference(graph)
    else:
        with observer.span(metric_names.SPAN_ALL_PAIRS, engine="reference"):
            routes = _all_pairs_reference(graph)
        observer.count(
            metric_names.ROUTE_TREES, len(routes.trees), engine="reference"
        )
    if check:
        _sanitize_routes(graph, routes)
    return routes


def _all_pairs_reference(graph: ASGraph) -> AllPairsRoutes:
    """The serial semantics-defining path: one Dijkstra per destination."""
    trees: Dict[NodeId, RouteTree] = {}
    expected = graph.num_nodes - 1
    for destination in graph.nodes:
        tree = route_tree(graph, destination)
        if len(tree.sources()) != expected:
            missing = set(graph.nodes) - set(tree.sources()) - {destination}
            raise DisconnectedGraphError(
                f"nodes {sorted(missing)} cannot reach {destination}"
            )
        trees[destination] = tree
    return AllPairsRoutes(graph=graph, trees=trees)


def _sanitize_routes(graph: ASGraph, routes: AllPairsRoutes) -> None:
    """Re-verify every selected route (sanitizer on, or forced)."""
    for destination in sorted(routes.trees):
        tree = routes.trees[destination]
        for source in tree.sources():
            sanitize_checks.check_lcp(
                graph, source, destination, tree.path(source), tree.cost(source)
            )
