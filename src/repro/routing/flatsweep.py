"""Vectorized demand inversion + shardable flat price sweep.

This module is the shared core under the ``flat`` and ``flat-parallel``
engines.  It owns the three scaling moves that take the Theorem 1 price
sweep past n = 10,000:

1. **Vectorized inversion.**  The canonical routes (or a scipy
   predecessor forest, for instances too large to tie-break
   canonically) are flattened into per-transit-node demand by numpy
   path-unrolling over dense parent arrays
   (:func:`demand_from_routes` / :func:`demand_from_forest`) -- no
   per-(source, destination) Python iteration.  The resulting
   :class:`FlatDemand` keeps every demanded ``(i, j, k)`` entry in the
   reference engine's scan order (destination ascending, source
   ascending, transit in path order), so an entry's position *is* its
   reference sequence number and violation witnesses stay exact.

2. **Group-contiguous evaluation.**  Entries are stably sorted by
   transit node once, and the per-pair source/destination/LCP columns
   are gathered into that order once -- each transit node's work is
   then a pair of contiguous array slices, with no per-group fancy
   indexing on the hot path.  Prices land in a flat array
   (:class:`FlatPriceArrays`); nothing per-entry touches a Python dict
   until a caller explicitly asks for the legacy mapping via
   :meth:`FlatPriceArrays.to_rows`.

3. **Sharded execution over shared memory.**  The per-transit-node
   groups are independent, so :func:`sweep_demand` can run them on a
   process pool: the CSR arrays, the sorted demand columns, and the
   output price array live in ``multiprocessing.shared_memory``
   segments (zero copies per worker); each worker makes a *private*
   scratch copy of the edge-weight column -- the only array masking
   mutates -- and writes its groups' prices into disjoint slices of the
   shared output.  The merge reuses the ``parallel`` engine's
   discipline: per-shard results are aggregated deterministically and
   the globally minimal-sequence violation is raised with the exact
   reference error class and message, so output is invariant to worker
   count and shard order.  Segments are unlinked in a ``finally`` block
   and backstopped by an ``atexit`` hook, so interrupted runs do not
   leak ``/dev/shm`` entries.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.exceptions import (
    DisconnectedGraphError,
    EngineError,
    MechanismError,
    NotBiconnectedError,
)
from repro.graphs.asgraph import ASGraph
from repro.routing.flatgraph import FlatGraph, build_flat_graph
from repro.types import Cost, NodeId

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.mechanism.vcg import PriceRow
    from repro.routing.allpairs import AllPairsRoutes

__all__ = [
    "FlatDemand",
    "FlatPriceArrays",
    "FlatSweepStats",
    "demand_from_forest",
    "demand_from_routes",
    "flat_price_arrays",
    "flat_sweep_sharded",
    "shard_transit_nodes",
    "sweep_demand",
]

#: Tolerance of the defensive negative-price guard; identical to the
#: reference sweep's literal so both paths trip on the same values.
_NEGATIVE_PRICE_EPS = -1e-9

#: Destinations per scipy Dijkstra batch in :func:`demand_from_forest`;
#: bounds the live distance/predecessor blocks to O(block * n).
_FOREST_BLOCK = 256


@dataclass
class FlatSweepStats:
    """Work accounting of one flat price sweep (obs + benchmark gates).

    ``solves`` counts masked Dijkstra calls (one per distinct transit
    node), ``rows`` the distance rows computed across them (the
    demand-restriction + orientation win: without either it would be
    ``solves * n``), ``masked`` the stored entries masked in place,
    ``entries`` the demanded ``(i, j, k)`` price evaluations,
    ``max_block_rows`` the largest single distance block held alive --
    the peak-memory driver, bounded by ``max_k |sources_k|`` -- and
    ``workers`` / ``shards`` the process/shard layout the sweep ran
    with (both 1 for the inline single-process path).
    """

    solves: int = 0
    rows: int = 0
    masked: int = 0
    entries: int = 0
    max_block_rows: int = 0
    workers: int = 1
    shards: int = 1


@dataclass
class FlatDemand:
    """The demanded ``(i, j, k)`` price entries as flat arrays.

    Two coexisting orders describe the same entries:

    * **sequence order** -- the reference engine's scan order.  Entry
      ``e``'s position in :attr:`entry_k` is its global sequence
      number; :attr:`pair_offset` slices the entries of priced pair
      ``p`` out of it.
    * **group order** -- entries stably sorted by transit node.
      :attr:`order` maps a group-order position back to its sequence
      number, and :attr:`src_by_k` / :attr:`dst_by_k` /
      :attr:`lcp_by_k` are the per-entry solve columns pre-gathered
      into group order, so transit node ``group_k[g]``'s whole demand
      is the contiguous slice ``group_ptr[g] : group_ptr[g + 1]``.
    """

    flat: FlatGraph
    #: per priced pair: dense endpoints, selected-LCP transit cost, and
    #: the offsets of its entries in sequence order.
    pair_src: np.ndarray = field(repr=False)
    pair_dst: np.ndarray = field(repr=False)
    pair_lcp: np.ndarray = field(repr=False)
    pair_offset: np.ndarray = field(repr=False)
    #: per entry, sequence order: dense transit node.
    entry_k: np.ndarray = field(repr=False)
    #: group order -> sequence number (stable argsort of entry_k).
    order: np.ndarray = field(repr=False)
    #: per entry, group order: solve columns.
    src_by_k: np.ndarray = field(repr=False)
    dst_by_k: np.ndarray = field(repr=False)
    lcp_by_k: np.ndarray = field(repr=False)
    #: per group: dense transit node and slice bounds into group order.
    group_k: np.ndarray = field(repr=False)
    group_ptr: np.ndarray = field(repr=False)

    @property
    def num_pairs(self) -> int:
        return int(self.pair_src.shape[0])

    @property
    def num_entries(self) -> int:
        return int(self.entry_k.shape[0])

    @property
    def num_groups(self) -> int:
        return int(self.group_k.shape[0])

    def transit_nodes(self) -> Tuple[NodeId, ...]:
        """The demanded transit nodes as node ids, ascending."""
        return tuple(self.flat.node_ids[self.group_k].tolist())


@dataclass
class FlatPriceArrays:
    """A priced table as flat arrays -- the sweep's native output.

    Pair ``p`` is ``(node_ids[pair_src[p]], node_ids[pair_dst[p]])``;
    its transit nodes and prices are the slice
    ``pair_offset[p] : pair_offset[p + 1]`` of :attr:`entry_k` /
    :attr:`prices` (path order).  No per-entry Python objects exist
    until :meth:`to_rows` is asked for the legacy dict-of-dicts
    mapping.
    """

    node_ids: np.ndarray = field(repr=False)
    pair_src: np.ndarray = field(repr=False)
    pair_dst: np.ndarray = field(repr=False)
    pair_lcp: np.ndarray = field(repr=False)
    pair_offset: np.ndarray = field(repr=False)
    entry_k: np.ndarray = field(repr=False)
    #: per entry, sequence order: the Theorem 1 price ``p^k_ij``.
    prices: np.ndarray = field(repr=False)
    stats: FlatSweepStats = field(default_factory=FlatSweepStats)

    @property
    def num_pairs(self) -> int:
        return int(self.pair_src.shape[0])

    @property
    def num_entries(self) -> int:
        return int(self.entry_k.shape[0])

    def to_rows(self) -> Dict[Tuple[NodeId, NodeId], "PriceRow"]:
        """Materialize the ``(source, destination) -> {k: price}`` dicts.

        One bulk ``tolist`` per column and one ``dict(zip(...))`` per
        pair -- the only remaining per-pair Python work, kept off the
        sweep itself and paid solely by callers that need the legacy
        mapping (the ``PriceTable`` surface, the differential tests).
        """
        src_ids = self.node_ids[self.pair_src].tolist()
        dst_ids = self.node_ids[self.pair_dst].tolist()
        transit_ids = self.node_ids[self.entry_k].tolist()
        price_values = self.prices.tolist()
        offsets = self.pair_offset.tolist()
        rows: Dict[Tuple[NodeId, NodeId], Dict[NodeId, Cost]] = {}
        for position in range(self.num_pairs):
            start, stop = offsets[position], offsets[position + 1]
            rows[(src_ids[position], dst_ids[position])] = dict(
                zip(transit_ids[start:stop], price_values[start:stop])
            )
        return rows


# ----------------------------------------------------------------------
# Demand construction: numpy path-unrolling over parent arrays.
# ----------------------------------------------------------------------


def _unroll_parents(
    parent: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized transit extraction from a flattened parent forest.

    ``parent[g]`` is the flattened position of ``g``'s next hop toward
    its root, or ``-1`` for roots and unreachable slots.  A position is
    a transit hop of ``g``'s path iff it lies strictly between ``g``
    and the root, i.e. while its own parent pointer is still set.

    Returns ``(sources, widths, entries)``: the flattened positions
    whose paths have at least one transit hop, their transit counts,
    and the concatenated transit chains in path order.  The unroll is
    level-synchronous -- iteration count is the maximum hop count, with
    all paths advanced per level in numpy -- and reproduces the
    per-path Python walk's order exactly.
    """
    routed = np.flatnonzero(parent >= 0)
    first_hop = parent[routed]
    width = np.zeros(routed.shape[0], dtype=np.int64)
    alive = np.flatnonzero(parent[first_hop] >= 0)
    cursor = first_hop[alive]
    while alive.size:
        width[alive] += 1
        ahead = parent[cursor]
        keep = parent[ahead] >= 0
        alive = alive[keep]
        cursor = ahead[keep]
    priced = np.flatnonzero(width)
    sources = routed[priced]
    widths = width[priced]
    offsets = np.zeros(widths.shape[0] + 1, dtype=np.int64)
    np.cumsum(widths, out=offsets[1:])
    entries = np.empty(int(offsets[-1]), dtype=np.int64)
    alive = np.arange(sources.shape[0], dtype=np.int64)
    cursor = parent[sources]
    level = 0
    while alive.size:
        entries[offsets[alive] + level] = cursor
        level += 1
        keep = widths[alive] > level
        alive = alive[keep]
        cursor = parent[cursor[keep]]
    return sources, widths, entries


def _finalize_demand(
    flat: FlatGraph,
    pair_src: np.ndarray,
    pair_dst: np.ndarray,
    pair_lcp: np.ndarray,
    pair_width: np.ndarray,
    entry_k: np.ndarray,
) -> FlatDemand:
    """Group the sequence-ordered demand by transit node, once."""
    pairs = int(pair_src.shape[0])
    entries = int(entry_k.shape[0])
    pair_offset = np.zeros(pairs + 1, dtype=np.int64)
    np.cumsum(pair_width, out=pair_offset[1:])
    # A stable sort keeps each transit node's entries in sequence
    # order, so within a group the minimal-sequence witness is simply
    # the first violating entry.
    order = np.argsort(entry_k, kind="stable")
    entry_pair = np.repeat(np.arange(pairs, dtype=np.int64), pair_width)
    pair_by_k = entry_pair[order]
    src_by_k = pair_src[pair_by_k]
    dst_by_k = pair_dst[pair_by_k]
    lcp_by_k = pair_lcp[pair_by_k]
    k_sorted = entry_k[order]
    if entries:
        bounds = np.flatnonzero(k_sorted[1:] != k_sorted[:-1]) + 1
        group_ptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), bounds, np.asarray([entries])]
        ).astype(np.int64)
        group_k = k_sorted[group_ptr[:-1]].astype(np.int64)
    else:
        group_ptr = np.zeros(1, dtype=np.int64)
        group_k = np.empty(0, dtype=np.int64)
    return FlatDemand(
        flat=flat,
        pair_src=pair_src,
        pair_dst=pair_dst,
        pair_lcp=pair_lcp,
        pair_offset=pair_offset,
        entry_k=entry_k,
        order=order,
        src_by_k=src_by_k,
        dst_by_k=dst_by_k,
        lcp_by_k=lcp_by_k,
        group_k=group_k,
        group_ptr=group_ptr,
    )


def demand_from_routes(
    graph: ASGraph,
    routes: "AllPairsRoutes",
    flat: Optional[FlatGraph] = None,
) -> FlatDemand:
    """Invert the canonical routes into per-transit-node demand.

    Per destination, the route tree's parent relation is densified into
    one parent array and unrolled with :func:`_unroll_parents`; the
    only remaining Python-level work is two ``fromiter`` scans per
    tree.  Destinations are visited in ``graph.nodes`` order and
    sources come out in ascending dense order, which is exactly the
    reference sweep's scan order -- entry positions are reference
    sequence numbers.
    """
    flat = flat if flat is not None else build_flat_graph(graph)
    n = flat.num_nodes
    node_ids = flat.node_ids
    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    lcp_parts: List[np.ndarray] = []
    width_parts: List[np.ndarray] = []
    entry_parts: List[np.ndarray] = []
    for destination in graph.nodes:
        tree = routes.tree(destination)
        parents = tree.parents
        if not parents:
            continue
        count = len(parents)
        children = np.fromiter(parents.keys(), dtype=np.int64, count=count)
        hops = np.fromiter(parents.values(), dtype=np.int64, count=count)
        parent = np.full(n, -1, dtype=np.int64)
        parent[np.searchsorted(node_ids, children)] = np.searchsorted(
            node_ids, hops
        )
        # The tree's cost labels, densified alongside the parents.  The
        # private dict is read directly: one fromiter per tree instead
        # of n method calls per destination.
        cost_labels = tree._costs
        label_nodes = np.fromiter(
            cost_labels.keys(), dtype=np.int64, count=len(cost_labels)
        )
        label_costs = np.fromiter(
            cost_labels.values(), dtype=np.float64, count=len(cost_labels)
        )
        dense_cost = np.full(n, np.nan, dtype=np.float64)
        dense_cost[np.searchsorted(node_ids, label_nodes)] = label_costs
        sources, widths, entries = _unroll_parents(parent)
        src_parts.append(sources.astype(np.int32))
        dst_parts.append(
            np.full(sources.shape[0], flat.index[destination], dtype=np.int32)
        )
        lcp_parts.append(dense_cost[sources])
        width_parts.append(widths)
        entry_parts.append(entries.astype(np.int32))
    return _finalize_demand(
        flat,
        _concat(src_parts, np.int32),
        _concat(dst_parts, np.int32),
        _concat(lcp_parts, np.float64),
        _concat(width_parts, np.int64),
        _concat(entry_parts, np.int32),
    )


def demand_from_forest(
    graph: ASGraph,
    flat: Optional[FlatGraph] = None,
    *,
    block_size: int = _FOREST_BLOCK,
) -> FlatDemand:
    """Per-transit-node demand from a scipy shortest-path forest.

    For instances too large to tie-break canonically (the 10k+ scaling
    presets), the route trees are taken from ``csgraph.dijkstra``
    predecessors instead of :func:`~repro.routing.allpairs.all_pairs_lcp`:
    running on the *transposed* reduction from destination ``j`` makes
    ``dist(j -> i)`` equal ``dist(i -> j)`` and the predecessor of
    ``i`` equal ``i``'s next hop toward ``j``, so one batched solve per
    destination block yields whole parent forests.  Destinations are
    processed in blocks of *block_size* and each block is unrolled as
    one flattened forest, preserving the (destination ascending, source
    ascending) sequence order.

    Caveats: scipy breaks shortest-path ties arbitrarily, so the
    selected routes -- and therefore the demanded ``(i, j, k)`` sets --
    agree with the canonical ones only up to ties (the scaling presets
    draw continuous costs, where ties have measure zero), and even on
    tie-free instances the LCP column matches the canonical labels only
    to ~1 ulp (``dist - c_j`` re-associates the float sum).  Differential
    fixtures must keep using canonical routes; this path exists for
    instances where the canonical tie-broken solve itself is infeasible.
    """
    if block_size < 1:
        raise EngineError(f"forest block size must be >= 1, got {block_size}")
    flat = flat if flat is not None else build_flat_graph(graph)
    n = flat.num_nodes
    # One transposed copy of the reduction, built once: the transpose
    # maps "distance to j" problems onto ordinary rooted solves.
    transposed = flat.matrix().T.tocsr()
    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    lcp_parts: List[np.ndarray] = []
    width_parts: List[np.ndarray] = []
    entry_parts: List[np.ndarray] = []
    for start in range(0, n, block_size):
        block = np.arange(start, min(start + block_size, n), dtype=np.int64)
        dist, predecessors = _csgraph_dijkstra(
            transposed,
            directed=True,
            indices=block,
            return_predecessors=True,
        )
        unreachable = ~np.isfinite(dist)
        unreachable[np.arange(block.shape[0]), block] = False
        if unreachable.any():
            row = int(np.flatnonzero(unreachable.any(axis=1))[0])
            missing = sorted(
                flat.node_ids[np.flatnonzero(unreachable[row])].tolist()
            )
            destination = int(flat.node_ids[block[row]])
            raise DisconnectedGraphError(
                f"nodes {missing} cannot reach {destination}"
            )
        # Flatten the block into one forest: row b's slots live at
        # [b * n, (b + 1) * n) and its parent pointers are offset to
        # match; scipy's -9999 sentinel (roots, and nothing else on a
        # connected graph) becomes -1.
        base = (np.arange(block.shape[0], dtype=np.int64) * n)[:, np.newaxis]
        parent = np.where(predecessors >= 0, predecessors + base, -1).ravel()
        sources, widths, entries = _unroll_parents(parent)
        src_parts.append((sources % n).astype(np.int32))
        dst_parts.append(block[sources // n].astype(np.int32))
        lcp_parts.append(
            (dist - flat.costs[block][:, np.newaxis]).ravel()[sources]
        )
        width_parts.append(widths)
        entry_parts.append((entries % n).astype(np.int32))
    return _finalize_demand(
        flat,
        _concat(src_parts, np.int32),
        _concat(dst_parts, np.int32),
        _concat(lcp_parts, np.float64),
        _concat(width_parts, np.int64),
        _concat(entry_parts, np.int32),
    )


def _concat(parts: List[np.ndarray], dtype: type) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=dtype)
    return np.concatenate(parts)


# ----------------------------------------------------------------------
# Group evaluation: one masked Dijkstra per transit node.
# ----------------------------------------------------------------------

#: A violation candidate in parent coordinates: (global sequence, kind
#: [0 = infinite detour, 1 = negative price], dense k, dense source,
#: dense destination, price).  The minimum sequence across all groups
#: is the witness the reference sweep would raise first.
_Violation = Tuple[int, int, int, int, int, float]


def _evaluate_group(
    flat: FlatGraph,
    dense_k: int,
    src: np.ndarray,
    dst: np.ndarray,
    lcp: np.ndarray,
    stats: FlatSweepStats,
) -> Tuple[np.ndarray, Optional[Tuple[int, int, float]]]:
    """Price one transit node's demanded entries in bulk.

    Returns the entry prices (same order as *src*) and, if any entry
    has an infinite detour or a negative price, the first violating
    local index with its kind and price -- *first*, because the inputs
    arrive in sequence order, making it the group's minimal-sequence
    witness.
    """
    n = flat.num_nodes
    # Transit cost is symmetric under the w(u -> v) = c_v reduction
    # (both directions sum the same interior node costs), so each
    # *unordered* pair needs one distance row.  Orient every pair onto
    # the endpoint covering the most of this k's demand (ties to the
    # smaller dense index): for the near-bipartite demand a popular
    # transit node induces, this collapses the Dijkstra sources onto
    # the small side.
    lo = np.minimum(src, dst).astype(np.int64)
    hi = np.maximum(src, dst).astype(np.int64)
    unordered, member = np.unique(lo * n + hi, return_inverse=True)
    u_lo = unordered // n
    u_hi = unordered - u_lo * n
    cover = np.bincount(u_lo, minlength=n) + np.bincount(u_hi, minlength=n)
    lo_wins = (cover[u_lo] > cover[u_hi]) | (
        (cover[u_lo] == cover[u_hi]) & (u_lo < u_hi)
    )
    solver = np.where(lo_wins, u_lo, u_hi)
    other = np.where(lo_wins, u_hi, u_lo)
    sources = np.unique(solver)

    with flat.masked(dense_k) as matrix:
        block = _csgraph_dijkstra(
            matrix,
            directed=True,
            indices=sources,
            return_predecessors=False,
        )
    stats.solves += 1
    stats.rows += int(sources.shape[0])
    stats.masked += flat.degree(dense_k)
    stats.max_block_rows = max(stats.max_block_rows, int(sources.shape[0]))

    u_detour = block[np.searchsorted(sources, solver), other] - flat.costs[other]
    detour = u_detour[member]
    prices = flat.costs[dense_k] + detour - lcp

    infinite = ~np.isfinite(detour)
    negative = ~infinite & (prices < _NEGATIVE_PRICE_EPS)
    if infinite.any() or negative.any():
        at = int(np.flatnonzero(infinite | negative)[0])
        return prices, (at, 0 if infinite[at] else 1, float(prices[at]))
    return prices, None


def _raise_reference_error(flat: FlatGraph, violation: _Violation) -> None:
    """Raise the violation exactly as the reference sweep would."""
    _sequence, kind, ki, si, dj, price = violation
    k = int(flat.node_ids[ki])
    source = int(flat.node_ids[si])
    destination = int(flat.node_ids[dj])
    if kind == 0:
        raise NotBiconnectedError(
            message=(
                f"price p^{k}_{{{source},{destination}}} undefined: "
                f"no {k}-avoiding path (graph not biconnected)"
            )
        )
    raise MechanismError(
        f"negative VCG price {price} for k={k}, pair "
        f"({source}, {destination}); avoiding cost below LCP cost"
    )


# ----------------------------------------------------------------------
# Shared-memory plumbing.
# ----------------------------------------------------------------------

#: (segment name, shape, dtype string) -- enough to re-map an array.
_ArraySpec = Tuple[str, Tuple[int, ...], str]

#: Arenas not yet destroyed; the atexit hook unlinks whatever an
#: interrupted run left behind so /dev/shm never accumulates segments.
_LIVE_ARENAS: List["_SweepArena"] = []
_ARENA_SEQUENCE = itertools.count()
_ATEXIT_ARMED = False


def _unlink_leftover_arenas() -> None:  # pragma: no cover - interpreter exit
    for arena in list(_LIVE_ARENAS):
        arena.destroy()


class _SweepArena:
    """All shared-memory segments of one sharded sweep.

    Created segments carry a recognizable ``repro-flat-<pid>-*`` name
    (tests assert no leftovers).  :meth:`destroy` closes and unlinks
    every segment exactly once and is called from the sweep's
    ``finally`` block; a module-level ``atexit`` hook destroys any
    arena still alive at interpreter exit (e.g. after a KeyboardInterrupt
    between creation and the ``try``).
    """

    def __init__(self) -> None:
        global _ATEXIT_ARMED
        self._segments: List[shared_memory.SharedMemory] = []
        self._views: List[np.ndarray] = []
        self._destroyed = False
        _LIVE_ARENAS.append(self)
        if not _ATEXIT_ARMED:
            atexit.register(_unlink_leftover_arenas)
            _ATEXIT_ARMED = True

    def _create(self, nbytes: int) -> shared_memory.SharedMemory:
        while True:
            name = f"repro-flat-{os.getpid()}-{next(_ARENA_SEQUENCE)}"
            try:
                return shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, nbytes)
                )
            except FileExistsError:  # stale segment from a dead pid
                continue

    def share(self, array: np.ndarray) -> Tuple[_ArraySpec, np.ndarray]:
        """Copy *array* into a fresh segment; returns (spec, live view)."""
        segment = self._create(array.nbytes)
        view: np.ndarray = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf
        )
        view[...] = array
        self._segments.append(segment)
        self._views.append(view)
        return (segment.name, array.shape, str(array.dtype)), view

    def destroy(self) -> None:
        if self._destroyed:
            return
        self._destroyed = True
        # Views must drop their buffer references before close().
        self._views.clear()
        for segment in self._segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        if self in _LIVE_ARENAS:
            _LIVE_ARENAS.remove(self)


@dataclass
class _WorkerState:
    """Per-worker view of the shared sweep (rebuilt by the initializer)."""

    flat: FlatGraph
    src_by_k: np.ndarray
    dst_by_k: np.ndarray
    lcp_by_k: np.ndarray
    order: np.ndarray
    prices_by_k: np.ndarray
    group_k: np.ndarray
    group_ptr: np.ndarray
    segments: List[shared_memory.SharedMemory]


_WORKER_STATE: Optional[_WorkerState] = None


def _suppress_registration(name: str, rtype: str) -> None:
    """Stand-in for ``resource_tracker.register`` during worker attach."""


def _attach(
    spec: _ArraySpec, segments: List[shared_memory.SharedMemory]
) -> np.ndarray:
    name, shape, dtype = spec
    # On this interpreter line, attaching would register the segment
    # with the (process-shared) resource tracker as if this worker
    # owned it; paired with the parent's unlink that double-books the
    # name and the tracker logs spurious KeyErrors.  ``track=False``
    # only exists on newer interpreters, so suppress the registration
    # call for the duration of the attach instead -- the parent remains
    # the sole registered owner and unlinks exactly once.
    register = resource_tracker.register
    resource_tracker.register = _suppress_registration
    try:
        segment = shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = register
    segments.append(segment)
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)


def _init_sweep_worker(payload: Dict[str, object]) -> None:
    """Pool initializer: map the shared arrays, copy the mask scratch.

    Everything is attached zero-copy except ``weights`` -- the one
    array :meth:`FlatGraph.masked` mutates -- which each worker copies
    into private memory so concurrent maskings cannot interleave.
    """
    global _WORKER_STATE
    segments: List[shared_memory.SharedMemory] = []
    specs = payload["specs"]
    assert isinstance(specs, dict)
    arrays = {key: _attach(spec, segments) for key, spec in specs.items()}
    flat = FlatGraph(
        node_ids=arrays["node_ids"],
        index={},  # masking and evaluation never consult the id map
        costs=arrays["costs"],
        indptr=arrays["indptr"],
        indices=arrays["indices"],
        weights=arrays["weights"].copy(),
        in_ptr=arrays["in_ptr"],
        in_positions=arrays["in_positions"],
    )
    _WORKER_STATE = _WorkerState(
        flat=flat,
        src_by_k=arrays["src_by_k"],
        dst_by_k=arrays["dst_by_k"],
        lcp_by_k=arrays["lcp_by_k"],
        order=arrays["order"],
        prices_by_k=arrays["prices_by_k"],
        group_k=payload["group_k"],  # type: ignore[assignment]
        group_ptr=payload["group_ptr"],  # type: ignore[assignment]
        segments=segments,
    )


def _sweep_shard_worker(
    groups: Tuple[int, ...],
) -> Tuple[Tuple[int, int, int, int], Optional[_Violation]]:
    """Price one shard's groups into the shared output array.

    Groups write disjoint ``group_ptr`` slices of the shared price
    array, so no synchronization is needed; the returned stats tuple
    and minimal-sequence violation are merged deterministically in the
    parent.
    """
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - initializer always runs
        raise EngineError(
            "sweep worker has no shared state; pool initializer did not run"
        )
    stats = FlatSweepStats()
    best: Optional[_Violation] = None
    for group in groups:
        start = int(state.group_ptr[group])
        stop = int(state.group_ptr[group + 1])
        dense_k = int(state.group_k[group])
        prices, bad = _evaluate_group(
            state.flat,
            dense_k,
            state.src_by_k[start:stop],
            state.dst_by_k[start:stop],
            state.lcp_by_k[start:stop],
            stats,
        )
        state.prices_by_k[start:stop] = prices
        if bad is not None:
            at, kind, price = bad
            candidate: _Violation = (
                int(state.order[start + at]),
                kind,
                dense_k,
                int(state.src_by_k[start + at]),
                int(state.dst_by_k[start + at]),
                price,
            )
            if best is None or candidate[0] < best[0]:
                best = candidate
    return (stats.solves, stats.rows, stats.masked, stats.max_block_rows), best


# ----------------------------------------------------------------------
# The sweep: inline or sharded over a pool.
# ----------------------------------------------------------------------


def shard_transit_nodes(
    transit: Sequence[NodeId],
    shards: int,
) -> List[Tuple[NodeId, ...]]:
    """Partition the demanded *transit* nodes round-robin into at most
    *shards* shards.

    Mirrors :func:`repro.routing.engines.parallel.shard_destinations`:
    round-robin keeps shards balanced when per-``k`` demand is skewed
    (core nodes of ISP-like topologies carry most transit), and the
    merge is order-invariant, so any partition yields the same sweep
    output -- this one is just a good default.
    """
    if shards < 1:
        raise EngineError(f"shard count must be >= 1, got {shards}")
    shards = min(shards, len(transit)) or 1
    return [tuple(transit[i::shards]) for i in range(shards)]


def _merge_shard_results(
    results: Sequence[Tuple[Tuple[int, int, int, int], Optional[_Violation]]],
    stats: FlatSweepStats,
) -> Optional[_Violation]:
    """Fold per-shard stats and surface the minimal-sequence violation.

    Addition and ``min``-by-sequence are order-insensitive, so the
    merged accounting and the raised witness are invariant to worker
    count and shard order -- the same discipline as the ``parallel``
    engine's sorted merge.
    """
    best: Optional[_Violation] = None
    for (solves, rows, masked, max_block_rows), violation in results:
        stats.solves += solves
        stats.rows += rows
        stats.masked += masked
        stats.max_block_rows = max(stats.max_block_rows, max_block_rows)
        if violation is not None and (best is None or violation[0] < best[0]):
            best = violation
    return best


def _sweep_inline(
    demand: FlatDemand,
    shard_lists: Sequence[Sequence[int]],
    stats: FlatSweepStats,
) -> Tuple[np.ndarray, Optional[_Violation]]:
    """Single-process sweep directly over the demand arrays."""
    prices_by_k = np.empty(demand.num_entries, dtype=np.float64)
    best: Optional[_Violation] = None
    for shard in shard_lists:
        for group in shard:
            start = int(demand.group_ptr[group])
            stop = int(demand.group_ptr[group + 1])
            dense_k = int(demand.group_k[group])
            prices, bad = _evaluate_group(
                demand.flat,
                dense_k,
                demand.src_by_k[start:stop],
                demand.dst_by_k[start:stop],
                demand.lcp_by_k[start:stop],
                stats,
            )
            prices_by_k[start:stop] = prices
            if bad is not None:
                at, kind, price = bad
                candidate: _Violation = (
                    int(demand.order[start + at]),
                    kind,
                    dense_k,
                    int(demand.src_by_k[start + at]),
                    int(demand.dst_by_k[start + at]),
                    price,
                )
                if best is None or candidate[0] < best[0]:
                    best = candidate
    return prices_by_k, best


def _sweep_pooled(
    demand: FlatDemand,
    shard_lists: Sequence[Sequence[int]],
    workers: int,
    stats: FlatSweepStats,
) -> Tuple[np.ndarray, Optional[_Violation]]:
    """Sharded sweep over a process pool with shared-memory arrays."""
    flat = demand.flat
    arena = _SweepArena()
    try:
        shared: Dict[str, _ArraySpec] = {}
        for key, array in (
            ("node_ids", flat.node_ids),
            ("costs", flat.costs),
            ("indptr", flat.indptr),
            ("indices", flat.indices),
            ("weights", flat.weights),
            ("in_ptr", flat.in_ptr),
            ("in_positions", flat.in_positions),
            ("src_by_k", demand.src_by_k),
            ("dst_by_k", demand.dst_by_k),
            ("lcp_by_k", demand.lcp_by_k),
            ("order", demand.order),
        ):
            shared[key], _view = arena.share(array)
        prices_spec, prices_view = arena.share(
            np.empty(demand.num_entries, dtype=np.float64)
        )
        shared["prices_by_k"] = prices_spec
        payload = {
            "specs": shared,
            "group_k": demand.group_k,
            "group_ptr": demand.group_ptr,
        }
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        tasks = [tuple(int(group) for group in shard) for shard in shard_lists]
        with context.Pool(
            processes=workers,
            initializer=_init_sweep_worker,
            initargs=(payload,),
        ) as pool:
            results = pool.map(_sweep_shard_worker, tasks)
        violation = _merge_shard_results(results, stats)
        return np.array(prices_view, copy=True), violation
    finally:
        arena.destroy()


def sweep_demand(
    demand: FlatDemand,
    *,
    workers: int = 1,
    shard_lists: Optional[Sequence[Sequence[int]]] = None,
    stats: Optional[FlatSweepStats] = None,
) -> FlatPriceArrays:
    """Run the avoiding sweep over *demand*; returns the priced arrays.

    *shard_lists* are sequences of group indices (positions into
    ``demand.group_k``); ``None`` means one shard holding every group.
    ``workers <= 1`` -- or a single shard -- prices inline with no pool
    and no shared memory; otherwise the shards run on *workers*
    processes over shared-memory arrays.  Output, accounting, and the
    raised violation (if any) are identical either way.
    """
    stats = stats if stats is not None else FlatSweepStats()
    stats.entries = demand.num_entries
    if shard_lists is None:
        shard_lists = [range(demand.num_groups)]
    stats.shards = len(shard_lists)
    stats.workers = 1
    if workers <= 1 or len(shard_lists) <= 1:
        prices_by_k, violation = _sweep_inline(demand, shard_lists, stats)
    else:
        stats.workers = workers
        prices_by_k, violation = _sweep_pooled(demand, shard_lists, workers, stats)
    if violation is not None:
        _raise_reference_error(demand.flat, violation)
    prices = np.empty(demand.num_entries, dtype=np.float64)
    prices[demand.order] = prices_by_k
    return FlatPriceArrays(
        node_ids=demand.flat.node_ids,
        pair_src=demand.pair_src,
        pair_dst=demand.pair_dst,
        pair_lcp=demand.pair_lcp,
        pair_offset=demand.pair_offset,
        entry_k=demand.entry_k,
        prices=prices,
        stats=stats,
    )


def _group_shards_round_robin(
    demand: FlatDemand, shards: int
) -> List[Sequence[int]]:
    count = min(max(shards, 1), demand.num_groups) or 1
    return [range(i, demand.num_groups, count) for i in range(count)]


def flat_price_arrays(
    graph: ASGraph,
    routes: Optional["AllPairsRoutes"] = None,
    *,
    workers: int = 1,
    shards: Optional[int] = None,
    stats: Optional[FlatSweepStats] = None,
) -> FlatPriceArrays:
    """Theorem 1 prices as flat arrays: demand inversion + sweep.

    The end-to-end array-native path: canonical routes (computed if not
    given) are inverted with :func:`demand_from_routes` and swept with
    *workers* processes over ``min(shards, groups)`` round-robin shards
    (*shards* defaults to *workers*).  The result prices exactly the
    pairs :func:`repro.routing.engines.flat.flat_price_rows` would,
    without materializing any per-entry Python structure.
    """
    if routes is None:
        from repro.routing.allpairs import all_pairs_lcp

        routes = all_pairs_lcp(graph)
    demand = demand_from_routes(graph, routes)
    shard_lists = _group_shards_round_robin(
        demand, shards if shards is not None else workers
    )
    return sweep_demand(
        demand, workers=workers, shard_lists=shard_lists, stats=stats
    )


def flat_sweep_sharded(
    graph: ASGraph,
    shards: Sequence[Tuple[NodeId, ...]],
    workers: int = 1,
    routes: Optional["AllPairsRoutes"] = None,
    *,
    stats: Optional[FlatSweepStats] = None,
) -> FlatPriceArrays:
    """The sweep over an explicit transit-node partition; exposed so the
    property tests can permute sharding.

    *shards* must partition the demanded transit set exactly (compare
    :func:`shard_transit_nodes`, which builds the default partition);
    any partition, in any order, yields bit-identical priced arrays and
    the same error behavior.
    """
    if routes is None:
        from repro.routing.allpairs import all_pairs_lcp

        routes = all_pairs_lcp(graph)
    demand = demand_from_routes(graph, routes)
    demanded = demand.transit_nodes()
    sharded = [node for shard in shards for node in shard]
    if sorted(sharded) != sorted(demanded):
        raise EngineError(
            "transit shards must partition the demanded transit set "
            f"exactly; got {sorted(sharded)} for transit nodes "
            f"{sorted(demanded)}"
        )
    group_of = {node: position for position, node in enumerate(demanded)}
    shard_lists: List[Sequence[int]] = [
        [group_of[node] for node in shard] for shard in shards
    ]
    return sweep_demand(
        demand, workers=workers, shard_lists=shard_lists, stats=stats
    )
