"""The canonical total order on candidate routes.

The paper assumes "the routing protocol has an appropriate way to break
ties" such that, per destination, the selected LCPs form a loop-free tree
``T(j)`` (Sect. 6).  The library's canonical order on a candidate path
``P`` toward a fixed destination is the tuple

    ``(cost(P), hops(P), P)``

compared lexicographically.  Two properties make it appropriate:

* **Strict extension.**  Prepending a hop strictly increases the key
  (hops grows even when the added transit cost is zero), so generalized
  Dijkstra over these keys is correct.
* **Suffix consistency.**  If ``P`` is the minimum-key path from ``i``,
  then for every node ``v`` on ``P`` the suffix of ``P`` from ``v`` is
  the minimum-key path from ``v`` -- otherwise splicing the better
  suffix into ``P`` would produce a walk with a smaller key, and the
  minimum key over walks is attained by a simple path.  Suffix
  consistency is exactly loop-freedom: the selected routes toward ``j``
  form a tree.

Both the centralized Dijkstra and the distributed BGP engine rank
candidates with :func:`route_key`, so they always select identical
routes (costs are accumulated identically too; see
:mod:`repro.routing.paths`).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.types import Cost, NodeId, PathTuple

RouteKey = Tuple[Cost, int, PathTuple]


def route_key(cost: Cost, path: Sequence[NodeId]) -> RouteKey:
    """The canonical comparison key for a candidate route.

    *cost* must be the transit cost of *path* computed with the canonical
    accumulation (see :func:`repro.routing.paths.transit_cost`); it is
    passed in rather than recomputed so that engines that accumulate
    incrementally keep bit-identical values.
    """
    path = tuple(path)
    return (cost, len(path) - 1, path)


def better(candidate: RouteKey, incumbent: RouteKey) -> bool:
    """Whether *candidate* beats *incumbent* under the canonical order."""
    return candidate < incumbent
