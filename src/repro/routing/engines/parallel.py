"""The multiprocessing batched engine: destinations sharded across workers.

The paper frames the mechanism as ``n^2`` independent LCP instances
(Sect. 1) that Section 6 organizes into ``n`` per-destination problems:
for destination ``j``, one route tree ``T(j)`` plus one ``G - k``
Dijkstra per transit node ``k`` yields every price ``p^k_ij`` at once.
Nothing couples two destinations, so all-pairs route/price computation
is embarrassingly parallel.  This engine exploits exactly that
structure:

1. **Shard.** The destination list is split round-robin into
   ``workers * shards_per_worker`` shards
   (:func:`shard_destinations`), small enough to balance the skewed
   per-destination cost of ISP-like topologies.
2. **Serialize once.** Each worker process rebuilds the
   :class:`~repro.graphs.asgraph.ASGraph` a single time from the pool
   initializer payload; shards then travel as bare destination tuples.
3. **Compute in the shard.** A worker runs the *identical* pure-Python
   per-destination code the reference engine runs -- ``route_tree`` plus
   :func:`~repro.routing.avoiding.avoiding_costs_for_destination` --
   so costs and prices are bit-for-bit the reference values, not merely
   close.  Workers ship back compact ``(parents, costs, price rows)``
   payloads; full path tuples are reconstructed in the parent from the
   parent relation (selected paths are suffix consistent by the
   canonical tie-break, so ``path(i) = (i,) + path(parent(i))``
   exactly).
4. **Merge deterministically.** Results are keyed by destination and
   merged in ascending destination order, which makes the output -- and
   the first error raised -- invariant to worker count and shard order;
   the property tests pin this.

Model-assumption failures detected inside a worker (disconnected graph,
missing k-avoiding path, negative price) are transported as structured
``(kind, message)`` payloads rather than pickled exceptions, and
re-raised in the parent as the same exception types, with the same
messages, the reference engine raises.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, List, Optional, Sequence, Tuple

import repro.obs as obs_mod
from repro.devtools import sanitize
from repro.exceptions import (
    DisconnectedGraphError,
    EngineError,
    MechanismError,
    NotBiconnectedError,
)
from repro.graphs.asgraph import ASGraph
from repro.mechanism.vcg import PriceRow, PriceTable
from repro.routing.allpairs import AllPairsRoutes
from repro.routing.avoiding import avoiding_costs_for_destination
from repro.obs import names as metric_names
from repro.routing.dijkstra import RouteTree, route_tree
from repro.routing.engines.base import Engine
from repro.types import Cost, Edge, NodeId, PathTuple

__all__ = [
    "ParallelEngine",
    "shard_destinations",
    "all_pairs_sharded",
    "price_table_sharded",
]

#: Graph rebuilt once per worker process by the pool initializer.
_WORKER_GRAPH: Optional[ASGraph] = None

_GraphPayload = Tuple[Tuple[Tuple[NodeId, Cost], ...], Tuple[Edge, ...]]


@dataclass(frozen=True)
class _DestinationResult:
    """Compact per-destination payload shipped from worker to parent."""

    destination: NodeId
    #: ``i -> next hop of i toward destination`` (empty on error).
    parents: Dict[NodeId, NodeId]
    #: ``i -> transit cost of the selected path`` (empty on error).
    costs: Dict[NodeId, Cost]
    #: ``source -> {k: price}``; ``None`` for routes-only shards.
    rows: Optional[Dict[NodeId, PriceRow]]
    #: ``(kind, message)`` when a model assumption failed in the worker.
    error: Optional[Tuple[str, str]]


def _init_worker(payload: _GraphPayload) -> None:
    """Pool initializer: rebuild the graph once per worker process."""
    global _WORKER_GRAPH
    nodes, edges = payload
    _WORKER_GRAPH = ASGraph(nodes=nodes, edges=edges)


def _graph_payload(graph: ASGraph) -> _GraphPayload:
    nodes = tuple((node, graph.cost(node)) for node in graph.nodes)
    return nodes, graph.edges


def _require_worker_graph() -> ASGraph:
    if _WORKER_GRAPH is None:  # pragma: no cover - initializer always runs
        raise EngineError("worker process has no graph; pool initializer did not run")
    return _WORKER_GRAPH


def _route_destination(graph: ASGraph, destination: NodeId) -> _DestinationResult:
    """One destination's route tree, or a structured connectivity error."""
    tree = route_tree(graph, destination)
    expected = graph.num_nodes - 1
    if len(tree.sources()) != expected:
        missing = set(graph.nodes) - set(tree.sources()) - {destination}
        return _DestinationResult(
            destination=destination,
            parents={},
            costs={},
            rows=None,
            error=("disconnected", f"nodes {sorted(missing)} cannot reach {destination}"),
        )
    return _DestinationResult(
        destination=destination,
        parents=dict(tree.parents),
        costs={source: tree.cost(source) for source in tree.sources()},
        rows=None,
        error=None,
    )


def _price_destination(graph: ASGraph, destination: NodeId) -> _DestinationResult:
    """One destination's route tree *and* Theorem 1 price rows.

    Runs the same per-destination loop as
    :func:`repro.mechanism.vcg.compute_price_table`, so transported
    prices are bit-identical to the reference engine's.
    """
    result = _route_destination(graph, destination)
    if result.error is not None:
        return result
    tree = route_tree(graph, destination)
    transit = set()
    for source in tree.sources():
        transit.update(tree.path(source)[1:-1])
    detours = avoiding_costs_for_destination(graph, destination, tuple(sorted(transit)))
    rows: Dict[NodeId, PriceRow] = {}
    for source in tree.sources():
        path = tree.path(source)
        if len(path) == 2:
            continue  # direct link: no transit nodes, no prices
        row: PriceRow = {}
        for k in path[1:-1]:
            detour = detours[k]
            if not detour.has_route(source):
                return _DestinationResult(
                    destination=destination,
                    parents={},
                    costs={},
                    rows=None,
                    error=(
                        "not-biconnected",
                        f"price p^{k}_{{{source},{destination}}} undefined: "
                        f"no {k}-avoiding path (graph not biconnected)",
                    ),
                )
            price = graph.cost(k) + detour.cost(source) - tree.cost(source)
            if price < -1e-9:
                return _DestinationResult(
                    destination=destination,
                    parents={},
                    costs={},
                    rows=None,
                    error=(
                        "negative-price",
                        f"negative VCG price {price} for k={k}, pair "
                        f"({source}, {destination}); avoiding cost below LCP cost",
                    ),
                )
            row[k] = price
        rows[source] = row
    return _DestinationResult(
        destination=result.destination,
        parents=result.parents,
        costs=result.costs,
        rows=rows,
        error=None,
    )


def _routes_shard(destinations: Tuple[NodeId, ...]) -> List[_DestinationResult]:
    graph = _require_worker_graph()
    return [_route_destination(graph, destination) for destination in destinations]


def _prices_shard(destinations: Tuple[NodeId, ...]) -> List[_DestinationResult]:
    graph = _require_worker_graph()
    return [_price_destination(graph, destination) for destination in destinations]


def shard_destinations(
    destinations: Sequence[NodeId],
    shards: int,
) -> List[Tuple[NodeId, ...]]:
    """Partition *destinations* round-robin into at most *shards* shards.

    Round-robin keeps shards balanced when per-destination work is
    skewed (ISP-like topologies concentrate transit in the core).  The
    merge step is keyed by destination, so any partition -- in any order
    -- yields the same final result; this particular one is just a good
    default.
    """
    if shards < 1:
        raise EngineError(f"shard count must be >= 1, got {shards}")
    shards = min(shards, len(destinations)) or 1
    return [tuple(destinations[i::shards]) for i in range(shards)]


def _check_partition(graph: ASGraph, shards: Sequence[Tuple[NodeId, ...]]) -> None:
    sharded = [destination for shard in shards for destination in shard]
    if sorted(sharded) != list(graph.nodes):
        raise EngineError(
            "destination shards must partition the node set exactly; got "
            f"{sorted(sharded)} for nodes {list(graph.nodes)}"
        )


def _run_shards(
    graph: ASGraph,
    shards: Sequence[Tuple[NodeId, ...]],
    worker: Callable[[Tuple[NodeId, ...]], List[_DestinationResult]],
    workers: int,
) -> List[_DestinationResult]:
    """Run *worker* over every shard, in-process or on a pool."""
    global _WORKER_GRAPH
    if workers <= 1 or len(shards) <= 1:
        # Inline execution: same shard functions, no serialization.
        previous = _WORKER_GRAPH
        _WORKER_GRAPH = graph
        try:
            return [result for shard in shards for result in worker(shard)]
        finally:
            _WORKER_GRAPH = previous
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    with context.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(_graph_payload(graph),),
    ) as pool:
        return [result for batch in pool.map(worker, shards) for result in batch]


_ERROR_TYPES: Dict[str, Callable[[str], Exception]] = {
    "disconnected": DisconnectedGraphError,
    "not-biconnected": lambda message: NotBiconnectedError(message=message),
    "negative-price": MechanismError,
}


def _merged_results(
    results: Sequence[_DestinationResult],
) -> List[_DestinationResult]:
    """Order results by destination and surface the first error.

    Sorting before raising makes both the success output and the raised
    exception independent of worker count and shard order.
    """
    ordered = sorted(results, key=lambda result: result.destination)
    for result in ordered:
        if result.error is not None:
            kind, message = result.error
            raise _ERROR_TYPES[kind](message)
    return ordered


def _paths_from_parents(
    destination: NodeId,
    parents: Dict[NodeId, NodeId],
) -> Dict[NodeId, PathTuple]:
    """Rebuild full selected paths from the parent relation.

    Selected paths are suffix consistent under the canonical tie-break
    (see :mod:`repro.routing.tiebreak`), so the full path of ``i`` is
    exactly ``(i,) + path(parent(i))``; walking the parent chain
    reproduces the worker-side tuples bit for bit.
    """
    paths: Dict[NodeId, PathTuple] = {destination: (destination,)}
    for node in parents:
        pending: List[NodeId] = []
        cursor = node
        while cursor not in paths:
            pending.append(cursor)
            cursor = parents[cursor]
        suffix = paths[cursor]
        for item in reversed(pending):
            suffix = (item,) + suffix
            paths[item] = suffix
    del paths[destination]
    return paths


def _rebuild_tree(result: _DestinationResult) -> RouteTree:
    return RouteTree(
        destination=result.destination,
        parents=result.parents,
        _paths=_paths_from_parents(result.destination, result.parents),
        _costs=result.costs,
    )


def _merge_routes(graph: ASGraph, results: Sequence[_DestinationResult]) -> AllPairsRoutes:
    trees = {result.destination: _rebuild_tree(result) for result in _merged_results(results)}
    return AllPairsRoutes(graph=graph, trees=trees)


def all_pairs_sharded(
    graph: ASGraph,
    shards: Sequence[Tuple[NodeId, ...]],
    workers: int = 1,
) -> AllPairsRoutes:
    """All-pairs selected LCPs computed over explicit destination
    *shards*; exposed so the property tests can permute sharding."""
    _check_partition(graph, shards)
    return _merge_routes(graph, _run_shards(graph, shards, _routes_shard, workers))


def price_table_sharded(
    graph: ASGraph,
    shards: Sequence[Tuple[NodeId, ...]],
    workers: int = 1,
    routes: Optional[AllPairsRoutes] = None,
) -> PriceTable:
    """Full Theorem 1 price table computed over explicit destination
    *shards*.

    When *routes* is supplied the merged table references it (the
    workers recompute trees shard-locally either way -- shipping routes
    into every worker would cost more than recomputing them).
    """
    _check_partition(graph, shards)
    results = _merged_results(_run_shards(graph, shards, _prices_shard, workers))
    if routes is None:
        routes = _merge_routes(graph, results)
    rows: Dict[Tuple[NodeId, NodeId], PriceRow] = {}
    for result in results:
        assert result.rows is not None  # prices shard always fills rows
        for source in sorted(result.rows):
            rows[(source, result.destination)] = result.rows[source]
    table = PriceTable(routes=routes, rows=rows)
    if sanitize.enabled():
        sanitize.check_price_table(graph, table)
    return table


class ParallelEngine(Engine):
    """Multiprocessing batched engine sharding destinations over workers.

    Parameters
    ----------
    workers:
        Worker process count; default ``os.cpu_count()``.  ``1`` runs
        the shard functions inline (no pool, no serialization) -- the
        output is identical by construction and by property test.
    shards_per_worker:
        Shards created per worker (finer shards balance skewed
        per-destination work at slightly higher dispatch overhead).
    """

    name: ClassVar[str] = "parallel"
    carries_paths: ClassVar[bool] = True

    def __init__(self, workers: Optional[int] = None, shards_per_worker: int = 4) -> None:
        if workers is not None and workers < 1:
            raise EngineError(f"worker count must be >= 1, got {workers}")
        if shards_per_worker < 1:
            raise EngineError(f"shards per worker must be >= 1, got {shards_per_worker}")
        self._workers = workers
        self._shards_per_worker = shards_per_worker

    @property
    def workers(self) -> int:
        """The effective worker count."""
        return self._workers if self._workers is not None else (os.cpu_count() or 1)

    def _shards(self, graph: ASGraph) -> List[Tuple[NodeId, ...]]:
        return shard_destinations(graph.nodes, self.workers * self._shards_per_worker)

    def _observe_setup(self, observer: obs_mod.Obs, graph: ASGraph) -> None:
        """Gauge the worker/shard layout the run will use.

        Round-robin shards of near-equal size are the worker-utilization
        proxy: the spread of ``engine.shard.size`` across shards bounds
        how long any worker can sit idle waiting for the longest shard.
        """
        shards = self._shards(graph)
        observer.gauge(metric_names.ENGINE_WORKERS, self.workers, engine=self.name)
        observer.gauge(metric_names.ENGINE_SHARDS, len(shards), engine=self.name)
        for shard_index, shard in enumerate(shards):
            observer.gauge(
                metric_names.ENGINE_SHARD_SIZE,
                len(shard),
                engine=self.name,
                shard=shard_index,
            )

    def _all_pairs(self, graph: ASGraph) -> AllPairsRoutes:
        return all_pairs_sharded(graph, self._shards(graph), workers=self.workers)

    def _price_table(
        self,
        graph: ASGraph,
        routes: Optional[AllPairsRoutes] = None,
    ) -> PriceTable:
        return price_table_sharded(
            graph, self._shards(graph), workers=self.workers, routes=routes
        )
