"""The ``flat-parallel`` engine: the flat sweep sharded across workers.

The per-transit-node groups of the flat price sweep are independent --
each masks its own ``G - k`` and prices its own demand slice -- so the
sweep parallelizes the same way the ``parallel`` engine's
per-destination problems do.  This engine shards the demanded transit
nodes round-robin across worker processes
(:func:`repro.routing.flatsweep.shard_transit_nodes`), with the CSR
reduction, the pre-gathered demand columns, and the output price array
living in ``multiprocessing.shared_memory`` segments: workers attach
zero-copy, keep a *private* scratch copy of the one array masking
mutates (the edge-weight column), and write their groups' prices into
disjoint slices of the shared output.

Determinism follows the ``parallel`` engine's merge discipline: each
entry's slice position encodes the reference engine's scan order, the
per-shard stats fold with order-insensitive addition/``max``, and the
globally minimal-sequence violation is raised with the reference's
exact error class and message -- so output (tables *and* errors) is
invariant to worker count and shard order, and bit-identical to the
single-process ``flat`` engine.  The property tests in
``tests/test_flat_parallel.py`` pin this.

``workers=1`` degenerates to the inline sweep (no pool, no shared
memory), making this engine a strict superset of ``flat``.
"""

from __future__ import annotations

import os
from typing import ClassVar, Optional

from repro.exceptions import EngineError
from repro.graphs.asgraph import ASGraph
from repro.routing.engines.flat import FlatEngine
from repro.routing.flatsweep import (
    FlatPriceArrays,
    FlatSweepStats,
    flat_price_arrays,
)
from repro.routing.allpairs import AllPairsRoutes

__all__ = ["FlatParallelEngine"]


class FlatParallelEngine(FlatEngine):
    """Sharded flat-CSR cost-only engine over shared-memory workers.

    Parameters
    ----------
    workers:
        Worker process count; default ``os.cpu_count()``.  ``1`` runs
        the sweep inline (no pool, no shared memory) -- the output is
        identical by construction and by property test.
    shards_per_worker:
        Transit-node shards created per worker (finer shards balance
        the skewed per-``k`` demand of ISP-like cores at slightly
        higher dispatch overhead).
    """

    name: ClassVar[str] = "flat-parallel"
    carries_paths: ClassVar[bool] = False

    def __init__(
        self, workers: Optional[int] = None, shards_per_worker: int = 4
    ) -> None:
        if workers is not None and workers < 1:
            raise EngineError(f"worker count must be >= 1, got {workers}")
        if shards_per_worker < 1:
            raise EngineError(
                f"shards per worker must be >= 1, got {shards_per_worker}"
            )
        self._workers = workers
        self._shards_per_worker = shards_per_worker

    @property
    def workers(self) -> int:
        """The effective worker count."""
        return self._workers if self._workers is not None else (os.cpu_count() or 1)

    def _price_arrays(
        self,
        graph: ASGraph,
        routes: AllPairsRoutes,
        stats: FlatSweepStats,
    ) -> FlatPriceArrays:
        return flat_price_arrays(
            graph,
            routes,
            workers=self.workers,
            shards=self.workers * self._shards_per_worker,
            stats=stats,
        )
