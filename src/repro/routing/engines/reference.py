"""The serial pure-Python reference engine.

This is the semantics-defining backend: one destination-rooted
generalized Dijkstra per destination (:func:`repro.routing.allpairs
.all_pairs_lcp`) and the per-(destination, k) avoiding sweep of
:func:`repro.mechanism.vcg.compute_price_table`, all on one core.
Every other engine is tested against it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Optional

import repro.obs as obs_mod
from repro.graphs.asgraph import ASGraph
from repro.routing.engines.base import Engine

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.mechanism.vcg import PriceTable
    from repro.routing.allpairs import AllPairsRoutes


class ReferenceEngine(Engine):
    """Serial pure-Python engine; defines the canonical answers."""

    name: ClassVar[str] = "reference"
    carries_paths: ClassVar[bool] = True

    # The reference code paths live in (and are instrumented by) the
    # routing/mechanism layers themselves, so this engine delegates
    # *with* the observer instead of using the base-class wrappers --
    # otherwise every route tree and price row would be counted twice.
    def all_pairs(
        self,
        graph: ASGraph,
        *,
        obs: Optional[obs_mod.Obs] = None,
    ) -> "AllPairsRoutes":
        from repro.routing.allpairs import all_pairs_lcp

        return all_pairs_lcp(graph, obs=obs)

    def price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
        *,
        obs: Optional[obs_mod.Obs] = None,
    ) -> "PriceTable":
        from repro.mechanism.vcg import compute_price_table

        return compute_price_table(graph, routes=routes, obs=obs)

    def _all_pairs(self, graph: ASGraph) -> "AllPairsRoutes":
        from repro.routing.allpairs import all_pairs_lcp

        return all_pairs_lcp(graph)

    def _price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
    ) -> "PriceTable":
        from repro.mechanism.vcg import compute_price_table

        return compute_price_table(graph, routes=routes)
