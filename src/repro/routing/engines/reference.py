"""The serial pure-Python reference engine.

This is the semantics-defining backend: one destination-rooted
generalized Dijkstra per destination (:func:`repro.routing.allpairs
.all_pairs_lcp`) and the per-(destination, k) avoiding sweep of
:func:`repro.mechanism.vcg.compute_price_table`, all on one core.
Every other engine is tested against it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Optional

from repro.graphs.asgraph import ASGraph
from repro.routing.engines.base import Engine

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.mechanism.vcg import PriceTable
    from repro.routing.allpairs import AllPairsRoutes


class ReferenceEngine(Engine):
    """Serial pure-Python engine; defines the canonical answers."""

    name: ClassVar[str] = "reference"
    carries_paths: ClassVar[bool] = True

    def all_pairs(self, graph: ASGraph) -> "AllPairsRoutes":
        from repro.routing.allpairs import all_pairs_lcp

        return all_pairs_lcp(graph)

    def price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
    ) -> "PriceTable":
        from repro.mechanism.vcg import compute_price_table

        return compute_price_table(graph, routes=routes)
