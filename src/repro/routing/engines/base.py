"""The engine abstraction every registered backend implements.

An *engine* answers the two bulk questions of the mechanism layer --
"what are all selected lowest-cost routes?" and "what are all Theorem 1
prices?" -- for one :class:`~repro.graphs.asgraph.ASGraph` instance.
Engines differ in *how* (serial pure Python, vectorized scipy,
multiprocessing shards), never in *what*: the differential test harness
holds every registered engine to the reference answers.

Capability model
----------------
``carries_paths`` distinguishes two engine classes:

* **path engines** (``reference``, ``parallel``) materialize full
  canonical tie-broken :class:`~repro.routing.allpairs.AllPairsRoutes`
  and must match the reference *exactly* -- same paths, bit-identical
  costs and prices;
* **cost-only engines** (``scipy``) expose the cost/price surface but
  not path objects; :meth:`Engine.all_pairs` raises
  :class:`~repro.exceptions.EngineError` and agreement is required only
  up to :func:`~repro.types.costs_close`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar, Dict, Optional

import numpy as np

import repro.obs as obs_mod
from repro.exceptions import EngineError
from repro.graphs.asgraph import ASGraph
from repro.obs import names as metric_names
from repro.types import Cost, NodeId

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.mechanism.vcg import PriceTable
    from repro.routing.allpairs import AllPairsRoutes


@dataclass(frozen=True)
class CostMatrix:
    """A dense all-pairs transit-cost matrix plus its node indexing.

    ``matrix[index[i], index[j]] = Cost(P(c; i, j))`` with zeros on the
    diagonal -- the common denominator every engine can produce, and the
    object the differential harness compares cost-only engines on.
    """

    matrix: np.ndarray = field(repr=False)
    index: Dict[NodeId, int]

    def cost(self, source: NodeId, destination: NodeId) -> Cost:
        return float(self.matrix[self.index[source], self.index[destination]])


class Engine(ABC):
    """One backend for bulk route/price computation.

    Subclasses set :attr:`name` (the registry key) and
    :attr:`carries_paths`, and implement :meth:`price_table`; path
    engines also implement :meth:`all_pairs`.
    """

    #: Registry key; stable across releases (CLI surface).
    name: ClassVar[str] = "abstract"

    #: Whether :meth:`all_pairs` yields real path objects.
    carries_paths: ClassVar[bool] = True

    def all_pairs(
        self,
        graph: ASGraph,
        *,
        obs: Optional[obs_mod.Obs] = None,
    ) -> "AllPairsRoutes":
        """All selected LCPs (canonical tie-break), one tree per
        destination.  Cost-only engines raise :class:`EngineError`.

        When an observer is active (explicit *obs* or the global
        toggle) the computation runs under an ``engine.all_pairs``
        span and emits a ``routing.route_trees`` counter, both labelled
        with this engine's name.
        """
        observer = obs_mod.active(obs)
        if observer is None:
            return self._all_pairs(graph)
        self._observe_setup(observer, graph)
        with observer.span(metric_names.SPAN_ENGINE_ALL_PAIRS, engine=self.name):
            routes = self._all_pairs(graph)
        observer.count(
            metric_names.ROUTE_TREES, len(routes.trees), engine=self.name
        )
        return routes

    def _all_pairs(self, graph: ASGraph) -> "AllPairsRoutes":
        """Backend hook for :meth:`all_pairs`; cost-only default."""
        raise EngineError(
            f"engine {self.name!r} is cost-only and does not carry paths; "
            "use a path engine (reference, parallel) for all_pairs"
        )

    def price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
        *,
        obs: Optional[obs_mod.Obs] = None,
    ) -> "PriceTable":
        """The full Theorem 1 price table for *graph*.

        *routes* optionally reuses precomputed selected LCPs; engines
        must produce identical prices with or without it.

        When an observer is active the computation runs under an
        ``engine.price_table`` span and emits the
        ``mechanism.price_rows`` throughput counter, labelled with this
        engine's name; engines with configurable parallelism also gauge
        their worker/shard layout via :meth:`_observe_setup`.
        """
        observer = obs_mod.active(obs)
        if observer is None:
            return self._price_table(graph, routes=routes)
        self._observe_setup(observer, graph)
        with observer.span(metric_names.SPAN_ENGINE_PRICE_TABLE, engine=self.name):
            table = self._price_table(graph, routes=routes)
        observer.count(
            metric_names.PRICE_ROWS, len(table.rows), engine=self.name
        )
        return table

    @abstractmethod
    def _price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
    ) -> "PriceTable":
        """Backend hook for :meth:`price_table`."""

    def _observe_setup(self, observer: obs_mod.Obs, graph: ASGraph) -> None:
        """Hook: emit engine-configuration gauges before an observed run."""

    def cost_matrix(self, graph: ASGraph) -> CostMatrix:
        """All-pairs transit costs as a dense matrix.

        Default implementation derives the matrix from
        :meth:`all_pairs`; vectorized engines override it.
        """
        routes = self.all_pairs(graph)
        index = graph.index_of()
        matrix = np.zeros((graph.num_nodes, graph.num_nodes))
        for destination in graph.nodes:
            tree = routes.tree(destination)
            dj = index[destination]
            for source in tree.sources():
                matrix[index[source], dj] = tree.cost(source)
        return CostMatrix(matrix=matrix, index=index)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} paths={self.carries_paths}>"
