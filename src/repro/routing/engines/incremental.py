"""The incremental warm-start engine: epoch-keyed route/price caching.

The paper's Sect. 6 model restarts convergence on every network event,
and the E10 dynamics driver mirrors that by recomputing the entire
centralized reference -- O(n^2) destination-rooted Dijkstras plus the
per-(destination, k) avoiding sweep -- from scratch after each event.
A single event, however, typically perturbs a small fraction of the
route trees.  This engine keeps every tree computed so far cached
across *graph epochs* and, when handed a mutated graph, recomputes only
the trees the mutation can affect.

Invalidation rules (soundness sketches; full argument in DESIGN.md
paragraph 11):

* ``CostChange(x)`` -- a route tree ``T(j)`` changes only if ``x`` is a
  transit node on some selected path toward ``j`` (equivalently: ``x``
  has a child in the tree), or the change is a *decrease* and some
  source's lower-bound cost through ``x`` -- ``d(i, x) + c_x' +
  d(x, j)``, read from the cached trees, whose ``d`` terms exclude
  ``c_x`` and are therefore unchanged -- reaches its incumbent cost.
  Increases elsewhere only worsen non-selected candidates.  An avoiding
  tree for ``(j, k)`` is additionally immune when ``k == x``: the graph
  ``G - k`` it was built in no longer contains ``x``.
* ``LinkFailure(u, v)`` -- removing candidates can only affect trees
  whose *tree edges* include ``(u, v)``; every other tree's selected
  paths survive verbatim and remain minimal over the smaller candidate
  set.  Avoiding trees with ``k in (u, v)`` never contained the link.
* ``LinkRecovery(u, v)`` -- adding candidates affects a tree only where
  the new link could improve (or tie) a label: any simple path through
  the link decomposes into segments that avoid it, so segment costs are
  bounded below by the *cached pre-event* distances, giving a sound
  per-source test ``d(i, a) + c_a + c_b + d(b, j) > Cost(P(c; i, j))``
  over both orientations of the link.  Ties conservatively invalidate
  (the canonical tie-break could prefer the new path).

Compound diffs compose soundly as long as at most one change is
*improving* (a cost decrease or a link addition): worsening changes
only raise the true distances the bounds underestimate.  Any diff with
two or more improving changes, or a changed node set, falls back to a
full rebuild.

The correctness bar is the repo's standard one: bit-identical
:class:`~repro.routing.allpairs.AllPairsRoutes` and
:class:`~repro.mechanism.vcg.PriceTable` versus the reference engine
after every epoch (``tests/test_incremental_engine.py`` drives
randomized event sequences through both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Dict, List, Optional, Set, Tuple

import repro.obs as obs_mod
from repro.devtools import sanitize as sanitize_checks
from repro.exceptions import (
    DisconnectedGraphError,
    MechanismError,
    NotBiconnectedError,
)
from repro.graphs.asgraph import ASGraph
from repro.obs import names as metric_names
from repro.routing.dijkstra import RouteTree, route_tree
from repro.routing.engines.base import Engine
from repro.types import EPSILON, Cost, Edge, NodeId

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.mechanism.vcg import PriceRow, PriceTable
    from repro.routing.allpairs import AllPairsRoutes

PairKey = Tuple[NodeId, NodeId]


@dataclass
class CacheStats:
    """Lifetime cache accounting for one :class:`IncrementalEngine`.

    ``hits``/``misses`` count *tree reuses* vs *tree (re)computations*
    (route and avoiding trees alike; a destination whose price rows are
    served from cache counts one hit per avoiding tree those rows
    used).  ``invalidations`` counts cached trees dropped by event
    invalidation, and ``dijkstra_runs`` counts actual
    :func:`~repro.routing.dijkstra.route_tree` invocations -- the
    currency the dynamics benchmark compares against the reference
    engine's ``n + sum_j |transit(j)|`` per epoch.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    dijkstra_runs: int = 0

    def snapshot(self) -> Tuple[int, int, int, int]:
        return (self.hits, self.misses, self.invalidations, self.dijkstra_runs)


class IncrementalEngine(Engine):
    """Path engine with epoch-keyed caching and event-scoped invalidation.

    Unlike the other registered engines this one is *stateful*: the
    speedup comes from holding one instance across a sequence of
    related graphs (the dynamics driver resolves its ``engine=`` spec
    once per scenario for exactly this reason).  Used one-shot it
    degrades gracefully to the reference behavior (every tree a miss).
    """

    name: ClassVar[str] = "incremental"
    carries_paths: ClassVar[bool] = True

    def __init__(self) -> None:
        self.stats = CacheStats()
        self._graph: Optional[ASGraph] = None
        self._costs: Dict[NodeId, Cost] = {}
        self._edges: Set[Edge] = set()
        self._trees: Dict[NodeId, RouteTree] = {}
        self._avoiding: Dict[NodeId, Dict[NodeId, RouteTree]] = {}
        self._rows: Dict[NodeId, Dict[PairKey, "PriceRow"]] = {}
        self._row_transit: Dict[NodeId, Tuple[NodeId, ...]] = {}

    # ------------------------------------------------------------------
    # Public cache control
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every cached tree and price row (cold restart)."""
        self._graph = None
        self._costs = {}
        self._edges = set()
        self._trees = {}
        self._avoiding = {}
        self._rows = {}
        self._row_transit = {}

    @property
    def cached_destinations(self) -> int:
        return len(self._trees)

    # ------------------------------------------------------------------
    # Engine interface (observer-aware wrappers add cache counters)
    # ------------------------------------------------------------------
    def all_pairs(
        self,
        graph: ASGraph,
        *,
        obs: Optional[obs_mod.Obs] = None,
    ) -> "AllPairsRoutes":
        observer = obs_mod.active(obs)
        if observer is None:
            return self._all_pairs(graph)
        before = self.stats.snapshot()
        with observer.span(metric_names.SPAN_ENGINE_ALL_PAIRS, engine=self.name):
            routes = self._all_pairs(graph)
        observer.count(metric_names.ROUTE_TREES, len(routes.trees), engine=self.name)
        self._emit_cache_counters(observer, before)
        return routes

    def price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
        *,
        obs: Optional[obs_mod.Obs] = None,
    ) -> "PriceTable":
        observer = obs_mod.active(obs)
        if observer is None:
            return self._price_table(graph, routes=routes)
        before = self.stats.snapshot()
        with observer.span(metric_names.SPAN_ENGINE_PRICE_TABLE, engine=self.name):
            table = self._price_table(graph, routes=routes)
        observer.count(metric_names.PRICE_ROWS, len(table.rows), engine=self.name)
        self._emit_cache_counters(observer, before)
        return table

    def _emit_cache_counters(
        self, observer: obs_mod.Obs, before: Tuple[int, int, int, int]
    ) -> None:
        hits, misses, invalidations, _runs = self.stats.snapshot()
        observer.count(metric_names.CACHE_HITS, hits - before[0], engine=self.name)
        observer.count(metric_names.CACHE_MISSES, misses - before[1], engine=self.name)
        observer.count(
            metric_names.CACHE_INVALIDATIONS,
            invalidations - before[2],
            engine=self.name,
        )

    def _all_pairs(self, graph: ASGraph) -> "AllPairsRoutes":
        from repro.routing.allpairs import AllPairsRoutes

        self._sync(graph)
        return AllPairsRoutes(graph=graph, trees=dict(self._trees))

    def _price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
    ) -> "PriceTable":
        from repro.mechanism.vcg import PriceTable
        from repro.routing.allpairs import AllPairsRoutes

        self._sync(graph)
        if routes is None:
            routes = AllPairsRoutes(graph=graph, trees=dict(self._trees))
        rows: Dict[PairKey, "PriceRow"] = {}
        for destination in graph.nodes:
            cached = self._rows.get(destination)
            if cached is not None:
                self.stats.hits += len(self._row_transit.get(destination, ()))
                rows.update(cached)
                continue
            dest_rows, transit = self._build_rows(graph, destination)
            self._rows[destination] = dest_rows
            self._row_transit[destination] = transit
            rows.update(dest_rows)
        table = PriceTable(routes=routes, rows=rows)
        if sanitize_checks.enabled():
            sanitize_checks.check_price_table(graph, table)
        return table

    # ------------------------------------------------------------------
    # Epoch synchronization
    # ------------------------------------------------------------------
    def _sync(self, graph: ASGraph) -> None:
        """Bring the tree caches up to date for *graph*'s epoch."""
        if self._graph is graph:
            return
        if self._graph is None:
            self._rebuild_all(graph)
            return
        new_costs = graph.costs()
        if set(new_costs) != set(self._costs):
            self._rebuild_all(graph)
            return
        old_costs = self._costs
        changed = sorted(
            # Declared costs are raw inputs, not derived arithmetic:
            # exact comparison is the epoch-diff definition (same
            # rationale as ASGraph.__eq__).
            x
            for x in new_costs
            if new_costs[x] != old_costs[x]
        )
        new_edges = set(graph.edges)
        removed = sorted(self._edges - new_edges)
        added = sorted(new_edges - self._edges)
        if not changed and not removed and not added:
            self._graph = graph
            return
        improving = len(added) + sum(
            1 for x in changed if new_costs[x] < old_costs[x]
        )
        if improving > 1:
            # The per-change bounds below assume cached distances stay
            # valid lower bounds; two concurrent improvements can feed
            # each other, so fall back to a full rebuild.
            self._rebuild_all(graph)
            return

        invalid_trees = [
            j
            for j in sorted(self._trees)
            if self._tree_affected(
                self._trees[j], j, changed, old_costs, new_costs, removed, added
            )
        ]
        invalid_avoiding: List[Tuple[NodeId, NodeId]] = []
        for j in sorted(self._avoiding):
            cache_j = self._avoiding[j]
            for k in sorted(cache_j):
                if self._avoid_affected(
                    cache_j[k], j, k, changed, old_costs, new_costs, removed, added
                ):
                    invalid_avoiding.append((j, k))

        self.stats.invalidations += len(invalid_trees) + len(invalid_avoiding)

        # Recompute invalidated route trees first: the invalidation
        # tests are conservative, so many recomputed trees come back
        # bit-identical.  Those destinations keep their avoiding/row
        # caches -- an identical tree certifies identical selected
        # paths, costs, and transit set, hence identical ``c_k`` row
        # inputs (a changed transit cost would have changed some path
        # cost); the avoiding trees are invalidation-tracked on their
        # own.  Any error below leaves every cache at the previous
        # epoch, so the next sync simply re-runs the same diff.
        new_trees = dict(self._trees)
        expected = graph.num_nodes - 1
        changed_trees: List[NodeId] = []
        for j in invalid_trees:
            tree = route_tree(graph, j)
            self.stats.misses += 1
            self.stats.dijkstra_runs += 1
            if len(tree.sources()) != expected:
                missing = set(graph.nodes) - set(tree.sources()) - {j}
                raise DisconnectedGraphError(
                    f"nodes {sorted(missing)} cannot reach {j}"
                )
            if tree != self._trees[j]:
                changed_trees.append(j)
            new_trees[j] = tree
        self.stats.hits += len(self._trees) - len(invalid_trees)

        dirty_rows = set(changed_trees)
        for j, k in invalid_avoiding:
            del self._avoiding[j][k]
            if k in self._row_transit.get(j, ()):
                dirty_rows.add(j)
        for j in sorted(dirty_rows):
            self._rows.pop(j, None)
            self._row_transit.pop(j, None)
        self._trees = new_trees
        self._graph = graph
        self._costs = new_costs
        self._edges = new_edges

    def _rebuild_all(self, graph: ASGraph) -> None:
        """Cold start: recompute every route tree, drop derived caches."""
        self.stats.invalidations += len(self._trees) + sum(
            len(cache) for cache in self._avoiding.values()
        )
        self.reset()
        trees: Dict[NodeId, RouteTree] = {}
        expected = graph.num_nodes - 1
        for destination in graph.nodes:
            tree = route_tree(graph, destination)
            self.stats.misses += 1
            self.stats.dijkstra_runs += 1
            if len(tree.sources()) != expected:
                missing = set(graph.nodes) - set(tree.sources()) - {destination}
                raise DisconnectedGraphError(
                    f"nodes {sorted(missing)} cannot reach {destination}"
                )
            trees[destination] = tree
        self._trees = trees
        self._graph = graph
        self._costs = graph.costs()
        self._edges = set(graph.edges)

    # ------------------------------------------------------------------
    # Invalidation tests (all evaluated against the *pre-event* caches)
    # ------------------------------------------------------------------
    def _tree_affected(
        self,
        tree: RouteTree,
        j: NodeId,
        changed: List[NodeId],
        old_costs: Dict[NodeId, Cost],
        new_costs: Dict[NodeId, Cost],
        removed: List[Edge],
        added: List[Edge],
    ) -> bool:
        parents = tree.parents
        for u, v in removed:
            if parents.get(u) == v or parents.get(v) == u:
                return True
        if changed:
            transit = set(parents.values())
            for x in changed:
                if x == j:
                    continue
                if x in transit:
                    return True
                if new_costs[x] < old_costs[x] and not self._decrease_safe(
                    tree, j, x, new_costs[x]
                ):
                    return True
        for u, v in added:
            if not self._edge_safe(tree, u, v, j, new_costs):
                return True
        return False

    def _avoid_affected(
        self,
        avoid: RouteTree,
        j: NodeId,
        k: NodeId,
        changed: List[NodeId],
        old_costs: Dict[NodeId, Cost],
        new_costs: Dict[NodeId, Cost],
        removed: List[Edge],
        added: List[Edge],
    ) -> bool:
        parents = avoid.parents
        for u, v in removed:
            if k in (u, v):
                continue  # G - k never contained this link
            if parents.get(u) == v or parents.get(v) == u:
                return True
        if changed:
            transit = set(parents.values())
            for x in changed:
                if x in (j, k):
                    continue  # endpoint cost / node absent from G - k
                if x in transit:
                    return True
                if new_costs[x] < old_costs[x] and not self._avoid_decrease_safe(
                    avoid, j, x, new_costs[x]
                ):
                    return True
        for u, v in added:
            if k in (u, v):
                continue
            if not self._avoid_edge_safe(avoid, j, k, u, v, new_costs):
                return True
        return False

    def _decrease_safe(
        self, tree: RouteTree, j: NodeId, x: NodeId, new_cost: Cost
    ) -> bool:
        """No source's through-``x`` lower bound reaches its incumbent.

        ``d(i, x)`` and ``d(x, j)`` exclude ``c_x`` (endpoint costs are
        free), so the cached pre-event trees provide them unchanged.
        """
        # Hot loop over every cached tree: read the cost dicts directly
        # (the predicate is order-independent, so no sorted() needed).
        x_costs = self._trees[x]._costs
        offset = new_cost + tree.cost(x) - EPSILON
        for i, incumbent in tree._costs.items():
            if i == x:
                continue  # paths from x never transit x: label unchanged
            if x_costs[i] + offset <= incumbent:
                return False
        return True

    def _avoid_decrease_safe(
        self, avoid: RouteTree, j: NodeId, x: NodeId, new_cost: Cost
    ) -> bool:
        """Decrease bound for ``G - k`` trees.

        The ``x -> j`` segment of a through-``x`` candidate lies in
        ``G - k`` itself, so the cached avoiding tree gives its cost
        *exactly* (``x`` is an endpoint, so the decreased ``c_x`` is
        uncounted; any other same-diff change is worsening, keeping the
        cached value a lower bound).  Only the ``i -> x`` segment falls
        back to the full-graph distance.  Reachability in ``G - k`` is
        cost-independent, so sources absent from the avoiding tree stay
        absent -- and if ``x`` itself is absent, no k-avoiding path
        through ``x`` exists at all.
        """
        dist_xj = avoid._costs.get(x)
        if dist_xj is None:
            return True
        x_costs = self._trees[x]._costs
        offset = new_cost + dist_xj - EPSILON
        for i, incumbent in avoid._costs.items():
            if i == x:
                continue
            if x_costs[i] + offset <= incumbent:
                return False
        return True

    def _edge_safe(
        self,
        tree: RouteTree,
        u: NodeId,
        v: NodeId,
        j: NodeId,
        new_costs: Dict[NodeId, Cost],
    ) -> bool:
        """No simple path through the new link can reach an incumbent.

        Any simple path using ``(u, v)`` decomposes into link-free
        segments, so pre-event distances bound the segments below; both
        orientations of the link are tested.
        """
        for a, b in ((u, v), (v, u)):
            if a == j:
                continue  # j interior to a simple path toward j: impossible
            a_costs = self._trees[a]._costs
            cost_b = 0.0 if b == j else new_costs[b]
            dist_bj = tree.cost(b) if b != j else 0.0
            cost_a = new_costs[a]
            offset = cost_a + cost_b + dist_bj - EPSILON
            for i, incumbent in tree._costs.items():
                if b == i:
                    continue  # the link would re-enter the source
                if a == i:
                    if cost_b + dist_bj - EPSILON <= incumbent:
                        return False
                    continue
                if a_costs[i] + offset <= incumbent:
                    return False
        return True

    def _avoid_edge_safe(
        self,
        avoid: RouteTree,
        j: NodeId,
        k: NodeId,
        u: NodeId,
        v: NodeId,
        new_costs: Dict[NodeId, Cost],
    ) -> bool:
        """Edge-recovery bound for ``G - k`` trees.

        A new link can also *reconnect* sources that had no k-avoiding
        path at all, so an incomplete avoiding tree is invalidated
        outright.  For complete trees the ``b -> j`` segment of any
        simple path using the link lies in ``G - k`` *without* that
        link -- exactly the graph the cached avoiding tree describes --
        so the tree's own distance bounds it (exactly on a pure edge
        event; from below when worsening changes share the diff).  The
        ``i -> a`` segment falls back to the full-graph distance.
        """
        graph = self._graph
        assert graph is not None
        if len(avoid._costs) != graph.num_nodes - 2:
            return False
        for a, b in ((u, v), (v, u)):
            if a == j:
                continue
            a_costs = self._trees[a]._costs
            cost_b = 0.0 if b == j else new_costs[b]
            dist_bj = avoid._costs[b] if b != j else 0.0
            cost_a = new_costs[a]
            offset = cost_a + cost_b + dist_bj - EPSILON
            for i, incumbent in avoid._costs.items():
                if b == i:
                    continue
                if a == i:
                    if cost_b + dist_bj - EPSILON <= incumbent:
                        return False
                    continue
                if a_costs[i] + offset <= incumbent:
                    return False
        return True

    # ------------------------------------------------------------------
    # Price rows
    # ------------------------------------------------------------------
    def _build_rows(
        self, graph: ASGraph, destination: NodeId
    ) -> Tuple[Dict[PairKey, "PriceRow"], Tuple[NodeId, ...]]:
        """The reference Theorem 1 sweep for one destination, with the
        avoiding trees served from (and committed to) the cache."""
        tree = self._trees[destination]
        source_paths = [
            (source, tree.path(source)) for source in tree.sources()
        ]
        transit_set = set()
        for _source, path in source_paths:
            transit_set.update(path[1:-1])
        transit = tuple(sorted(transit_set))
        cache = self._avoiding.setdefault(destination, {})
        detours: Dict[NodeId, RouteTree] = {}
        for k in transit:
            cached = cache.get(k)
            if cached is None:
                cached = route_tree(graph.masked_without_node(k), destination)
                cache[k] = cached
                self.stats.misses += 1
                self.stats.dijkstra_runs += 1
            else:
                self.stats.hits += 1
            detours[k] = cached
        rows: Dict[PairKey, "PriceRow"] = {}
        for source, path in source_paths:
            if len(path) == 2:
                continue  # direct link: no transit nodes, no prices
            row: "PriceRow" = {}
            for k in path[1:-1]:
                detour = detours[k]
                if not detour.has_route(source):
                    raise NotBiconnectedError(
                        message=(
                            f"price p^{k}_{{{source},{destination}}} undefined: "
                            f"no {k}-avoiding path (graph not biconnected)"
                        )
                    )
                price = graph.cost(k) + detour.cost(source) - tree.cost(source)
                if price < -1e-9:
                    raise MechanismError(
                        f"negative VCG price {price} for k={k}, pair "
                        f"({source}, {destination}); avoiding cost below LCP cost"
                    )
                row[k] = price
            rows[(source, destination)] = row
        return rows, transit
