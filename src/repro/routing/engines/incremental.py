"""The incremental engine: dynamic SSSP repair across graph epochs.

The paper's Sect. 6 model restarts convergence on every network event,
and the E10 dynamics driver mirrors that by recomputing the entire
centralized reference -- O(n^2) destination-rooted Dijkstras plus the
per-(destination, k) avoiding sweep -- from scratch after each event.
A single event, however, typically perturbs a small fraction of the
route trees, and within a perturbed tree only a small cone of labels.
This engine keeps every tree computed so far cached across *graph
epochs* and, when handed a mutated graph, repairs the affected trees
*in place* (Ramalingam-Reps / Narvaez style) instead of discarding and
re-running Dijkstra:

* **Improving events** (cost decrease at ``x``, link addition
  ``(u, v)``) seed a priority queue with the boundary vertices whose
  tentative key improves -- the neighbors of ``x`` with their
  through-``x`` candidates, or both orientations of the new link -- and
  run a Dijkstra wave that settles *only* nodes whose label strictly
  improves under the canonical ``(cost, hops, path)`` order.  Because
  that order is a total order on simple paths (path tuples break every
  tie), the minimum-key label per node is unique and the wave's output
  is bit-identical to a cold re-run; no tolerance is involved.  The
  wave also reconnects sources that previously had no label at all
  (their incumbent is ``+inf``), which is how incomplete avoiding trees
  heal on link recovery.
* **Worsening events** (cost increase at ``x``, link removal) detach
  exactly the orphaned cone -- the parent-forest subtree under ``x``
  (resp. under the downstream endpoint of a removed tree edge) -- drop
  its labels, and re-anchor it: seed each detached node with its best
  candidate through the intact boundary, then wave within the detached
  set.  Labels outside the cone were optimal before and only competing
  candidates worsened, so they are provably final.

Every epoch diff decomposes into elementary events applied
*sequentially* (sorted removals, then sorted cost changes, then sorted
additions) against evolving intermediate costs/adjacency; each repair
is exact for its intermediate graph, so arbitrarily many improving
changes compose per diff -- the full-rebuild fallback PR 5 needed for
multi-improving diffs is gone.  Repairs build replacement trees on
scratch state and the caches commit only once the whole diff (including
the reference engine's disconnection check, reproduced in the same
destination order for error parity) has succeeded, so a raised error
leaves every cache at the previous epoch.

Full algorithm write-up, invariants, and fallback conditions:
DESIGN.md section 14.

The correctness bar is the repo's standard one: bit-identical
:class:`~repro.routing.allpairs.AllPairsRoutes` and
:class:`~repro.mechanism.vcg.PriceTable` versus the reference engine
after every epoch (``tests/test_incremental_engine.py`` drives
randomized event sequences through both).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Dict, List, Optional, Set, Tuple

import repro.obs as obs_mod
from repro.devtools import sanitize as sanitize_checks
from repro.exceptions import (
    DisconnectedGraphError,
    MechanismError,
    NotBiconnectedError,
)
from repro.graphs.asgraph import ASGraph
from repro.obs import names as metric_names
from repro.routing.dijkstra import RouteTree, route_tree
from repro.routing.engines.base import Engine
from repro.routing.tiebreak import RouteKey, route_key
from repro.types import Cost, Edge, NodeId

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.mechanism.vcg import PriceRow, PriceTable
    from repro.routing.allpairs import AllPairsRoutes

PairKey = Tuple[NodeId, NodeId]

#: adjacency snapshot the repair waves walk; values iterated sorted
Adjacency = Dict[NodeId, Set[NodeId]]


@dataclass
class CacheStats:
    """Lifetime cache accounting for one :class:`IncrementalEngine`.

    ``hits``/``misses`` count *tree reuses* vs *tree (re)computations
    from scratch* (route and avoiding trees alike; a destination whose
    price rows are served from cache counts one hit per avoiding tree
    those rows used).  ``invalidations`` counts cached trees whose
    labels an event touched -- under PR 5's warm start those trees were
    dropped and rebuilt cold, now they are repaired in place.
    ``dijkstra_runs`` counts actual
    :func:`~repro.routing.dijkstra.route_tree` invocations -- the
    currency the dynamics benchmark compares against the reference
    engine's ``n + sum_j |transit(j)|`` per epoch.

    The repair counters meter the in-place work: ``relaxed`` labels
    settled by improve waves, ``detached`` labels dropped from orphaned
    cones, ``reanchored`` labels re-established by re-anchor waves.
    ``relaxed + reanchored`` over the average tree size is the
    "Dijkstra-equivalent" cost of the repair path.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    dijkstra_runs: int = 0
    relaxed: int = 0
    detached: int = 0
    reanchored: int = 0

    def snapshot(self) -> Tuple[int, int, int, int, int, int, int]:
        return (
            self.hits,
            self.misses,
            self.invalidations,
            self.dijkstra_runs,
            self.relaxed,
            self.detached,
            self.reanchored,
        )


def _incumbent_key(tree: RouteTree, node: NodeId) -> Optional[RouteKey]:
    """*node*'s current label as a route key (``None`` if unlabeled)."""
    cost = tree._costs.get(node)
    if cost is None:
        return None
    return route_key(cost, tree._paths[node])


def _improve_wave(
    tree: RouteTree,
    seeds: List[Tuple[NodeId, RouteKey]],
    adjacency: Adjacency,
    costs: Dict[NodeId, Cost],
    masked: Optional[NodeId],
) -> Tuple[Optional[RouteTree], int]:
    """Settle every label an improving event makes strictly better.

    *seeds* are ``(node, candidate key)`` boundary pairs; the wave
    relaxes outward from each seed whose candidate beats the node's
    incumbent label under the full canonical order, so exactly the
    improved cone is re-settled and every final label equals the cold
    recomputation bit for bit (the order is total: no ties exist to
    resolve differently).  Returns ``(repaired tree, labels settled)``,
    or ``(None, 0)`` when no seed improves anything.
    """
    best: Dict[NodeId, RouteKey] = {}
    heap: List[Tuple[RouteKey, NodeId]] = []
    for node, key in seeds:
        incumbent = _incumbent_key(tree, node)
        if incumbent is not None and not key < incumbent:
            continue
        current = best.get(node)
        if current is None or key < current:
            best[node] = key
            heapq.heappush(heap, (key, node))
    if not heap:
        return None, 0
    parents = dict(tree.parents)
    paths = dict(tree._paths)
    label_costs = dict(tree._costs)
    finalized: Set[NodeId] = set()
    settled = 0
    while heap:
        key, node = heapq.heappop(heap)
        if node in finalized or key != best.get(node):
            continue
        finalized.add(node)
        settled += 1
        cost, _hops, path = key
        parents[node] = path[1]
        paths[node] = path
        label_costs[node] = cost
        hop_cost = costs[node]
        for neighbor in sorted(adjacency[node]):
            if neighbor == masked or neighbor in finalized or neighbor in path:
                continue
            candidate = route_key(cost + hop_cost, (neighbor,) + path)
            current = best.get(neighbor)
            if current is not None:
                if candidate < current:
                    best[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
                continue
            incumbent = _incumbent_key(tree, neighbor)
            if incumbent is not None and not candidate < incumbent:
                continue
            best[neighbor] = candidate
            heapq.heappush(heap, (candidate, neighbor))
    repaired = RouteTree(
        destination=tree.destination,
        parents=parents,
        _paths=paths,
        _costs=label_costs,
    )
    return repaired, settled


def _detach_and_reanchor(
    tree: RouteTree,
    detach: Set[NodeId],
    adjacency: Adjacency,
    costs: Dict[NodeId, Cost],
    masked: Optional[NodeId],
) -> Tuple[RouteTree, int]:
    """Drop the *detach* cone's labels and grow them back exactly.

    Labels outside the cone survive a worsening event unchanged (their
    paths stay feasible and every competing candidate only worsened),
    so each detached node is seeded with its best candidate through the
    intact boundary and the wave relaxes *within the cone only*.  Nodes
    the boundary cannot reach stay unlabeled -- exactly the cold
    engine's treatment of unreachable sources.  Returns the repaired
    tree and the number of labels re-established.
    """
    destination = tree.destination
    parents = dict(tree.parents)
    paths = dict(tree._paths)
    label_costs = dict(tree._costs)
    for node in sorted(detach):
        del parents[node]
        del paths[node]
        del label_costs[node]
    best: Dict[NodeId, RouteKey] = {}
    heap: List[Tuple[RouteKey, NodeId]] = []
    for node in sorted(detach):
        for neighbor in sorted(adjacency[node]):
            if neighbor == masked or neighbor in detach:
                continue
            if neighbor == destination:
                nb_cost: Cost = 0.0
                nb_path = (destination,)
                hop_cost: Cost = 0.0
            else:
                maybe_cost = label_costs.get(neighbor)
                if maybe_cost is None:
                    continue
                nb_cost = maybe_cost
                nb_path = paths[neighbor]
                hop_cost = costs[neighbor]
            if node in nb_path:
                continue
            candidate = route_key(nb_cost + hop_cost, (node,) + nb_path)
            current = best.get(node)
            if current is None or candidate < current:
                best[node] = candidate
                heapq.heappush(heap, (candidate, node))
    finalized: Set[NodeId] = set()
    settled = 0
    while heap:
        key, node = heapq.heappop(heap)
        if node in finalized or key != best.get(node):
            continue
        finalized.add(node)
        settled += 1
        cost, _hops, path = key
        parents[node] = path[1]
        paths[node] = path
        label_costs[node] = cost
        hop_cost = costs[node]
        for neighbor in sorted(adjacency[node]):
            if (
                neighbor == masked
                or neighbor not in detach
                or neighbor in finalized
                or neighbor in path
            ):
                continue
            candidate = route_key(cost + hop_cost, (neighbor,) + path)
            current = best.get(neighbor)
            if current is None or candidate < current:
                best[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    repaired = RouteTree(
        destination=destination,
        parents=parents,
        _paths=paths,
        _costs=label_costs,
    )
    return repaired, settled


def _subtree(tree: RouteTree, root: NodeId) -> Set[NodeId]:
    """*root* plus every node routing through it in the parent forest."""
    children: Dict[NodeId, List[NodeId]] = {}
    for child, parent in tree.parents.items():
        children.setdefault(parent, []).append(child)
    cone = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        for child in children.get(node, ()):
            if child not in cone:
                cone.add(child)
                stack.append(child)
    return cone


def _repair_removal(
    tree: RouteTree,
    u: NodeId,
    v: NodeId,
    adjacency: Adjacency,
    costs: Dict[NodeId, Cost],
    masked: Optional[NodeId],
) -> Tuple[Optional[RouteTree], int, int]:
    """Repair one tree after edge ``(u, v)`` left the graph.

    Only trees actually *using* the edge change: a selected path uses
    ``(u, v)`` iff it is a tree edge of the parent forest, and then
    exactly the subtree under its downstream endpoint is orphaned.
    Returns ``(repaired tree or None, labels detached, labels
    re-anchored)``.
    """
    if tree.parents.get(u) == v:
        root = u
    elif tree.parents.get(v) == u:
        root = v
    else:
        return None, 0, 0
    detach = _subtree(tree, root)
    repaired, settled = _detach_and_reanchor(tree, detach, adjacency, costs, masked)
    return repaired, len(detach), settled


def _repair_cost_change(
    tree: RouteTree,
    x: NodeId,
    old_cost: Cost,
    new_cost: Cost,
    adjacency: Adjacency,
    costs: Dict[NodeId, Cost],
    masked: Optional[NodeId],
) -> Tuple[Optional[RouteTree], int, int]:
    """Repair one tree after ``c_x`` changed (caller already skipped
    ``x == destination`` and ``x == masked``; *costs* holds the new
    value).

    ``x``'s own label never moves (endpoint costs are free and simple
    paths from ``x`` cannot transit ``x``).  An increase orphans
    exactly ``x``'s descendants; a decrease seeds every neighbor of
    ``x`` with its through-``x`` candidate and lets the improve wave
    cascade -- descendants re-label along their unchanged paths at the
    lower fold, and newly-through-``x`` nodes are captured by the same
    wave.  Returns ``(repaired tree or None, detached, settled)``.
    """
    if new_cost > old_cost:
        detach = _subtree(tree, x)
        detach.discard(x)
        if not detach:
            return None, 0, 0
        repaired, settled = _detach_and_reanchor(
            tree, detach, adjacency, costs, masked
        )
        return repaired, len(detach), settled
    x_cost = tree._costs.get(x)
    if x_cost is None:
        return None, 0, 0  # x unreachable: no path transits it either
    x_path = tree._paths[x]
    seeds: List[Tuple[NodeId, RouteKey]] = []
    for neighbor in sorted(adjacency[x]):
        if neighbor == masked or neighbor in x_path:
            continue
        seeds.append((neighbor, route_key(x_cost + new_cost, (neighbor,) + x_path)))
    repaired, settled = _improve_wave(tree, seeds, adjacency, costs, masked)
    return repaired, 0, settled


def _repair_addition(
    tree: RouteTree,
    u: NodeId,
    v: NodeId,
    adjacency: Adjacency,
    costs: Dict[NodeId, Cost],
    masked: Optional[NodeId],
) -> Tuple[Optional[RouteTree], int, int]:
    """Repair one tree after edge ``(u, v)`` joined the graph.

    Both orientations seed the improve wave: the candidate for ``a``
    via ``b`` extends ``b``'s (unchanged) label across the new link.
    Sources with no label -- disconnected in ``G`` or in ``G - k`` --
    reconnect through the same wave.  Returns ``(repaired tree or
    None, 0, settled)``.
    """
    destination = tree.destination
    seeds: List[Tuple[NodeId, RouteKey]] = []
    for a, b in ((u, v), (v, u)):
        if a == destination:
            continue
        if b == destination:
            b_cost: Cost = 0.0
            b_path = (destination,)
            hop_cost: Cost = 0.0
        else:
            maybe_cost = tree._costs.get(b)
            if maybe_cost is None:
                continue
            b_cost = maybe_cost
            b_path = tree._paths[b]
            hop_cost = costs[b]
        if a in b_path:
            continue
        seeds.append((a, route_key(b_cost + hop_cost, (a,) + b_path)))
    repaired, settled = _improve_wave(tree, seeds, adjacency, costs, masked)
    return repaired, 0, settled


class IncrementalEngine(Engine):
    """Path engine with epoch-keyed caching and in-place tree repair.

    Unlike the other registered engines this one is *stateful*: the
    speedup comes from holding one instance across a sequence of
    related graphs (the dynamics driver resolves its ``engine=`` spec
    once per scenario for exactly this reason).  Used one-shot it
    degrades gracefully to the reference behavior (every tree a miss).
    """

    name: ClassVar[str] = "incremental"
    carries_paths: ClassVar[bool] = True

    def __init__(self) -> None:
        self.stats = CacheStats()
        self._graph: Optional[ASGraph] = None
        self._costs: Dict[NodeId, Cost] = {}
        self._edges: Set[Edge] = set()
        self._trees: Dict[NodeId, RouteTree] = {}
        self._avoiding: Dict[NodeId, Dict[NodeId, RouteTree]] = {}
        self._rows: Dict[NodeId, Dict[PairKey, "PriceRow"]] = {}
        self._row_transit: Dict[NodeId, Tuple[NodeId, ...]] = {}

    # ------------------------------------------------------------------
    # Public cache control
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every cached tree and price row (cold restart)."""
        self._graph = None
        self._costs = {}
        self._edges = set()
        self._trees = {}
        self._avoiding = {}
        self._rows = {}
        self._row_transit = {}

    @property
    def cached_destinations(self) -> int:
        return len(self._trees)

    # ------------------------------------------------------------------
    # Engine interface (observer-aware wrappers add cache counters)
    # ------------------------------------------------------------------
    def all_pairs(
        self,
        graph: ASGraph,
        *,
        obs: Optional[obs_mod.Obs] = None,
    ) -> "AllPairsRoutes":
        observer = obs_mod.active(obs)
        if observer is None:
            return self._all_pairs(graph)
        before = self.stats.snapshot()
        with observer.span(metric_names.SPAN_ENGINE_ALL_PAIRS, engine=self.name):
            routes = self._all_pairs(graph)
        observer.count(metric_names.ROUTE_TREES, len(routes.trees), engine=self.name)
        self._emit_cache_counters(observer, before)
        return routes

    def price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
        *,
        obs: Optional[obs_mod.Obs] = None,
    ) -> "PriceTable":
        observer = obs_mod.active(obs)
        if observer is None:
            return self._price_table(graph, routes=routes)
        before = self.stats.snapshot()
        with observer.span(metric_names.SPAN_ENGINE_PRICE_TABLE, engine=self.name):
            table = self._price_table(graph, routes=routes)
        observer.count(metric_names.PRICE_ROWS, len(table.rows), engine=self.name)
        self._emit_cache_counters(observer, before)
        return table

    def _emit_cache_counters(
        self,
        observer: obs_mod.Obs,
        before: Tuple[int, int, int, int, int, int, int],
    ) -> None:
        now = self.stats.snapshot()
        observer.count(metric_names.CACHE_HITS, now[0] - before[0], engine=self.name)
        observer.count(metric_names.CACHE_MISSES, now[1] - before[1], engine=self.name)
        observer.count(
            metric_names.CACHE_INVALIDATIONS, now[2] - before[2], engine=self.name
        )
        observer.count(
            metric_names.REPAIR_RELAXED, now[4] - before[4], engine=self.name
        )
        observer.count(
            metric_names.REPAIR_DETACHED, now[5] - before[5], engine=self.name
        )
        observer.count(
            metric_names.REPAIR_REANCHORED, now[6] - before[6], engine=self.name
        )

    def _all_pairs(self, graph: ASGraph) -> "AllPairsRoutes":
        from repro.routing.allpairs import AllPairsRoutes

        self._sync(graph)
        return AllPairsRoutes(graph=graph, trees=dict(self._trees))

    def _price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
    ) -> "PriceTable":
        from repro.mechanism.vcg import PriceTable
        from repro.routing.allpairs import AllPairsRoutes

        self._sync(graph)
        if routes is None:
            routes = AllPairsRoutes(graph=graph, trees=dict(self._trees))
        rows: Dict[PairKey, "PriceRow"] = {}
        for destination in graph.nodes:
            cached = self._rows.get(destination)
            if cached is not None:
                self.stats.hits += len(self._row_transit.get(destination, ()))
                rows.update(cached)
                continue
            dest_rows, transit = self._build_rows(graph, destination)
            self._rows[destination] = dest_rows
            self._row_transit[destination] = transit
            rows.update(dest_rows)
        table = PriceTable(routes=routes, rows=rows)
        if sanitize_checks.enabled():
            sanitize_checks.check_price_table(graph, table)
        return table

    # ------------------------------------------------------------------
    # Epoch synchronization
    # ------------------------------------------------------------------
    def _sync(self, graph: ASGraph) -> None:
        """Bring the tree caches up to date for *graph*'s epoch.

        The epoch diff (exact cost comparison -- declared costs are raw
        inputs, not derived arithmetic, the same rationale as
        ``ASGraph.__eq__``) decomposes into elementary events applied
        sequentially: sorted removals, then sorted cost changes, then
        sorted additions.  Each event repairs every affected tree
        against the *intermediate* costs/adjacency, so each repair is
        exact for its intermediate graph and the composition is exact
        for the final one -- improving changes ride the repair path no
        matter how many share the diff.  All repairs build replacement
        trees on scratch dicts; the caches commit only after the whole
        diff and the reference-parity disconnection check succeed.
        """
        if self._graph is graph:
            return
        if self._graph is None:
            self._rebuild_all(graph)
            return
        new_costs = graph.costs()
        if set(new_costs) != set(self._costs):
            self._rebuild_all(graph)
            return
        old_costs = self._costs
        changed = sorted(
            x for x in new_costs if new_costs[x] != old_costs[x]
        )
        new_edges = set(graph.edges)
        removed = sorted(self._edges - new_edges)
        added = sorted(new_edges - self._edges)
        if not changed and not removed and not added:
            self._graph = graph
            return

        costs = dict(old_costs)
        adjacency: Adjacency = {node: set() for node in old_costs}
        for u, v in sorted(self._edges):
            adjacency[u].add(v)
            adjacency[v].add(u)
        trees = dict(self._trees)
        avoiding = {j: dict(cache_j) for j, cache_j in self._avoiding.items()}
        touched_trees: Set[NodeId] = set()
        touched_avoiding: Set[PairKey] = set()
        repairs = 0

        for u, v in removed:
            adjacency[u].discard(v)
            adjacency[v].discard(u)
            for j in sorted(trees):
                repairs += self._repair_one(
                    trees, j, None, touched_trees, touched_avoiding,
                    _repair_removal, u, v, adjacency, costs,
                )
            for j in sorted(avoiding):
                for k in sorted(avoiding[j]):
                    if k in (u, v):
                        continue  # G - k never contained this link
                    repairs += self._repair_one(
                        avoiding[j], k, (j, k), touched_trees, touched_avoiding,
                        _repair_removal, u, v, adjacency, costs,
                    )
        for x in changed:
            old_cost = costs[x]
            new_cost = new_costs[x]
            costs[x] = new_cost
            for j in sorted(trees):
                if x == j:
                    continue  # root cost is never counted
                repairs += self._repair_one(
                    trees, j, None, touched_trees, touched_avoiding,
                    _repair_cost_change, x, old_cost, new_cost, adjacency, costs,
                )
            for j in sorted(avoiding):
                if x == j:
                    continue
                for k in sorted(avoiding[j]):
                    if x == k:
                        continue  # node absent from G - k
                    repairs += self._repair_one(
                        avoiding[j], k, (j, k), touched_trees, touched_avoiding,
                        _repair_cost_change, x, old_cost, new_cost, adjacency, costs,
                    )
        for u, v in added:
            adjacency[u].add(v)
            adjacency[v].add(u)
            for j in sorted(trees):
                repairs += self._repair_one(
                    trees, j, None, touched_trees, touched_avoiding,
                    _repair_addition, u, v, adjacency, costs,
                )
            for j in sorted(avoiding):
                for k in sorted(avoiding[j]):
                    if k in (u, v):
                        continue
                    repairs += self._repair_one(
                        avoiding[j], k, (j, k), touched_trees, touched_avoiding,
                        _repair_addition, u, v, adjacency, costs,
                    )

        # Reference error parity: the cold engine raises at the first
        # destination (in node order) any source cannot reach.
        expected = graph.num_nodes - 1
        for j in graph.nodes:
            tree = trees[j]
            if len(tree._paths) != expected:
                missing = set(graph.nodes) - set(tree._paths) - {j}
                raise DisconnectedGraphError(
                    f"nodes {sorted(missing)} cannot reach {j}"
                )

        self.stats.invalidations += repairs
        self.stats.hits += len(trees) - len(touched_trees)
        dirty_rows = set(touched_trees)
        for j, k in sorted(touched_avoiding):
            if k in self._row_transit.get(j, ()):
                dirty_rows.add(j)
        for j in sorted(dirty_rows):
            self._rows.pop(j, None)
            self._row_transit.pop(j, None)
        self._trees = trees
        self._avoiding = avoiding
        self._graph = graph
        self._costs = new_costs
        self._edges = new_edges

    def _repair_one(
        self,
        store: Dict[NodeId, RouteTree],
        key: NodeId,
        avoid_key: Optional[PairKey],
        touched_trees: Set[NodeId],
        touched_avoiding: Set[PairKey],
        repair,
        *args,
    ) -> int:
        """Apply one elementary-event repair to one stored tree.

        For a route tree *store* is the tree dict keyed by destination
        and *avoid_key* is ``None``; for an avoiding tree *store* is
        the per-destination cache keyed by the masked node ``k`` and
        *avoid_key* is ``(j, k)``.  Returns 1 if the tree changed.
        """
        masked = avoid_key[1] if avoid_key is not None else None
        repaired, detached, settled = repair(store[key], *args, masked)
        if repaired is None:
            return 0
        store[key] = repaired
        if detached:
            self.stats.detached += detached
            self.stats.reanchored += settled
        else:
            self.stats.relaxed += settled
        if avoid_key is None:
            touched_trees.add(key)
        else:
            touched_avoiding.add(avoid_key)
        return 1

    def _rebuild_all(self, graph: ASGraph) -> None:
        """Cold start: recompute every route tree, drop derived caches.

        Reached only from an empty cache or a changed *node set* (the
        diff model mutates costs and links, never membership); every
        cost/link diff, whatever its size, rides the repair path.
        """
        self.stats.invalidations += len(self._trees) + sum(
            len(cache) for cache in self._avoiding.values()
        )
        self.reset()
        trees: Dict[NodeId, RouteTree] = {}
        expected = graph.num_nodes - 1
        for destination in graph.nodes:
            tree = route_tree(graph, destination)
            self.stats.misses += 1
            self.stats.dijkstra_runs += 1
            if len(tree.sources()) != expected:
                missing = set(graph.nodes) - set(tree.sources()) - {destination}
                raise DisconnectedGraphError(
                    f"nodes {sorted(missing)} cannot reach {destination}"
                )
            trees[destination] = tree
        self._trees = trees
        self._graph = graph
        self._costs = graph.costs()
        self._edges = set(graph.edges)

    # ------------------------------------------------------------------
    # Price rows
    # ------------------------------------------------------------------
    def _build_rows(
        self, graph: ASGraph, destination: NodeId
    ) -> Tuple[Dict[PairKey, "PriceRow"], Tuple[NodeId, ...]]:
        """The reference Theorem 1 sweep for one destination, with the
        avoiding trees served from (and committed to) the cache."""
        tree = self._trees[destination]
        source_paths = [
            (source, tree.path(source)) for source in tree.sources()
        ]
        transit_set = set()
        for _source, path in source_paths:
            transit_set.update(path[1:-1])
        transit = tuple(sorted(transit_set))
        cache = self._avoiding.setdefault(destination, {})
        detours: Dict[NodeId, RouteTree] = {}
        for k in transit:
            cached = cache.get(k)
            if cached is None:
                cached = route_tree(graph.masked_without_node(k), destination)
                cache[k] = cached
                self.stats.misses += 1
                self.stats.dijkstra_runs += 1
            else:
                self.stats.hits += 1
            detours[k] = cached
        rows: Dict[PairKey, "PriceRow"] = {}
        for source, path in source_paths:
            if len(path) == 2:
                continue  # direct link: no transit nodes, no prices
            row: "PriceRow" = {}
            for k in path[1:-1]:
                detour = detours[k]
                if not detour.has_route(source):
                    raise NotBiconnectedError(
                        message=(
                            f"price p^{k}_{{{source},{destination}}} undefined: "
                            f"no {k}-avoiding path (graph not biconnected)"
                        )
                    )
                price = graph.cost(k) + detour.cost(source) - tree.cost(source)
                if price < -1e-9:
                    raise MechanismError(
                        f"negative VCG price {price} for k={k}, pair "
                        f"({source}, {destination}); avoiding cost below LCP cost"
                    )
                row[k] = price
            rows[(source, destination)] = row
        return rows, transit
