"""The ``flat`` engine: batched, demand-restricted, memory-bounded prices.

This is the scaling backend for the Theorem 1 price sweep.  Like the
``scipy`` engine it is cost-only (path *selection* still comes from the
canonical tie-broken routes -- prices are defined relative to them),
but the avoiding sweep differs in three ways that move the feasible
instance size from hundreds of nodes past ten thousand:

1. **One-shot CSR, O(deg(k)) masking.**  The directed
   ``w(u -> v) = c_v`` reduction is built once per graph epoch as flat
   numpy arrays (:mod:`repro.routing.flatgraph`); ``G - k`` masks the
   stored in-edges of ``k`` in place instead of rebuilding the matrix
   from Python edge loops per transit node.

2. **Vectorized inversion + demand restriction with symmetric
   orientation.**  The canonical routes are inverted into the transit
   relation ``k -> {(i, j) : k transit on P(c; i, j)}`` by numpy
   path-unrolling over dense parent arrays -- no per-(source,
   destination) Python iteration
   (:func:`repro.routing.flatsweep.demand_from_routes`).  Under the
   reduction the *transit* cost of a detour is direction-independent,
   so each *unordered* demanded pair needs only one distance row; every
   pair is oriented onto the endpoint that covers the most pairs of
   ``k``'s demand and the per-``k`` Dijkstra runs only from those
   solver endpoints.  Only one ``k``'s distance block is ever alive, so
   peak extra memory is O(max_k |sources_k| * n).

3. **Array-native evaluation and assembly.**  Per ``k``, the demanded
   entries are contiguous slices of pre-gathered arrays and
   ``p^k_ij = c_k + Cost(P_{-k}) - Cost(P)`` is evaluated in bulk; the
   priced result lives in flat arrays
   (:class:`repro.routing.flatsweep.FlatPriceArrays`) with no
   per-entry Python dict work on the hot path.  Violations are raised
   as the same :class:`~repro.exceptions.MechanismError` /
   :class:`~repro.exceptions.NotBiconnectedError` the reference engine
   raises, with the *same deterministic witness*: candidates are
   ordered by the reference sweep's iteration order (destination
   ascending, source ascending, transit position along the path) and
   the first one wins, so differential tests see identical error
   classes and messages.

The sweep itself lives in :mod:`repro.routing.flatsweep` and is shared
with :class:`~repro.routing.engines.flat_parallel.FlatParallelEngine`,
which runs the same per-transit-node groups sharded across worker
processes over shared memory.

Observability: an observed run counts ``routing.flat.solves`` (masked
Dijkstra calls, one per distinct transit node), ``routing.flat.rows``
(distance rows actually computed -- the demand-restriction win),
``routing.flat.masked`` (stored entries masked across all solves), and
``routing.flat.workers`` / ``routing.flat.shards`` (the sweep's
process/shard layout; 1/1 for this engine) alongside the standard
engine span/counter surface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Dict, Optional, Tuple

import numpy as np

import repro.obs as obs_mod
from repro.devtools import sanitize
from repro.exceptions import DisconnectedGraphError
from repro.graphs.asgraph import ASGraph
from repro.obs import names as metric_names
from repro.routing.engines.base import CostMatrix, Engine
from repro.routing.flatgraph import build_flat_graph
from repro.routing.flatsweep import (
    _NEGATIVE_PRICE_EPS,  # noqa: F401  (re-export: tests pin the literal)
    FlatPriceArrays,
    FlatSweepStats,
    flat_price_arrays,
)
from repro.types import NodeId

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.mechanism.vcg import PriceRow, PriceTable
    from repro.routing.allpairs import AllPairsRoutes

__all__ = ["FlatEngine", "FlatSweepStats", "flat_price_rows"]


def flat_price_rows(
    graph: ASGraph,
    routes: Optional["AllPairsRoutes"] = None,
    *,
    stats: Optional[FlatSweepStats] = None,
) -> Dict[Tuple[NodeId, NodeId], "PriceRow"]:
    """Theorem 1 price rows via the batched, demand-restricted sweep.

    Returns the same ``(source, destination) -> {k: price}`` mapping as
    :func:`repro.mechanism.vcg.compute_price_table` stores (direct-link
    pairs omitted); *stats*, when given, is filled with the sweep's
    work accounting.  This is the dict-materializing convenience over
    :func:`repro.routing.flatsweep.flat_price_arrays`; large-instance
    callers should stay on the arrays and skip :meth:`to_rows`.
    """
    return flat_price_arrays(graph, routes, stats=stats).to_rows()


class FlatEngine(Engine):
    """Flat-CSR cost-only engine for large price tables."""

    name: ClassVar[str] = "flat"
    carries_paths: ClassVar[bool] = False

    # The flat sweep produces its own counters, so this engine manages
    # the observer explicitly (same signature as the reference engine,
    # per the RPR009 contract) instead of using the base-class wrapper.
    def price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
        *,
        obs: Optional[obs_mod.Obs] = None,
    ) -> "PriceTable":
        observer = obs_mod.active(obs)
        if observer is None:
            return self._price_table(graph, routes=routes)
        stats = FlatSweepStats()
        with observer.span(metric_names.SPAN_ENGINE_PRICE_TABLE, engine=self.name):
            table = self._build_table(graph, routes, stats)
        observer.count(metric_names.PRICE_ROWS, len(table.rows), engine=self.name)
        observer.count(metric_names.FLAT_SOLVES, stats.solves, engine=self.name)
        observer.count(metric_names.FLAT_ROWS, stats.rows, engine=self.name)
        observer.count(metric_names.FLAT_MASKED, stats.masked, engine=self.name)
        observer.count(metric_names.FLAT_WORKERS, stats.workers, engine=self.name)
        observer.count(metric_names.FLAT_SHARDS, stats.shards, engine=self.name)
        return table

    def _price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
    ) -> "PriceTable":
        return self._build_table(graph, routes, FlatSweepStats())

    def _price_arrays(
        self,
        graph: ASGraph,
        routes: "AllPairsRoutes",
        stats: FlatSweepStats,
    ) -> FlatPriceArrays:
        """The sweep itself; the parallel subclass reroutes this onto
        its sharded worker pool."""
        return flat_price_arrays(graph, routes, stats=stats)

    def _build_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"],
        stats: FlatSweepStats,
    ) -> "PriceTable":
        from repro.mechanism.vcg import PriceTable
        from repro.routing.allpairs import all_pairs_lcp

        routes = routes if routes is not None else all_pairs_lcp(graph)
        rows = self._price_arrays(graph, routes, stats).to_rows()
        table = PriceTable(routes=routes, rows=rows)
        if sanitize.enabled():
            sanitize.check_price_table(graph, table)
        return table

    def cost_matrix(self, graph: ASGraph) -> CostMatrix:
        from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

        flat = build_flat_graph(graph)
        dist = _csgraph_dijkstra(
            flat.matrix(), directed=True, return_predecessors=False
        )
        transit = dist - flat.costs[np.newaxis, :]
        np.fill_diagonal(transit, 0.0)
        if np.isinf(transit).any():
            raise DisconnectedGraphError("graph is disconnected")
        return CostMatrix(matrix=transit, index=flat.index)
