"""The ``flat`` engine: batched, demand-restricted, memory-bounded prices.

This is the scaling backend for the Theorem 1 price sweep.  Like the
``scipy`` engine it is cost-only (path *selection* still comes from the
canonical tie-broken routes -- prices are defined relative to them),
but the avoiding sweep differs in three ways that move the feasible
instance size from hundreds of nodes to thousands:

1. **One-shot CSR, O(deg(k)) masking.**  The directed
   ``w(u -> v) = c_v`` reduction is built once per graph epoch as flat
   numpy arrays (:mod:`repro.routing.flatgraph`); ``G - k`` masks the
   stored in-edges of ``k`` in place instead of rebuilding the matrix
   from Python edge loops per transit node.

2. **Demand restriction with symmetric orientation.**  The canonical
   routes are inverted into the transit relation
   ``k -> {(i, j) : k transit on P(c; i, j)}``.  Under the reduction
   the *transit* cost of a detour is direction-independent --
   ``dist(i -> j) - c_j`` and ``dist(j -> i) - c_i`` are both the sum
   of the interior node costs of the same best avoiding path -- so
   each *unordered* demanded pair needs only one distance row.  Every
   pair is oriented onto the endpoint that covers the most pairs of
   ``k``'s demand (ties to the smaller dense index), and the per-``k``
   Dijkstra runs only from those solver endpoints
   (``csgraph.dijkstra(indices=sources_k)``).  Only one ``k``'s
   distance block is ever alive, so peak extra memory is
   O(max_k |sources_k| * n) -- there is no per-``k`` detour cache and
   nothing O(n^3).

3. **Vectorized evaluation.**  Per ``k``, the demanded ``(i, j)``
   entries are gathered as index arrays and
   ``p^k_ij = c_k + Cost(P_{-k}) - Cost(P)`` is evaluated in bulk,
   including the negative-price and non-biconnected (infinite detour)
   guards.  Violations are raised as the same
   :class:`~repro.exceptions.MechanismError` /
   :class:`~repro.exceptions.NotBiconnectedError` the reference engine
   raises, with the *same deterministic witness*: candidates are
   ordered by the reference sweep's iteration order (destination
   ascending, source ascending, transit position along the path) and
   the first one wins, so differential tests see identical error
   classes and messages.

Observability: an observed run counts ``routing.flat.solves`` (masked
Dijkstra calls, one per distinct transit node), ``routing.flat.rows``
(distance rows actually computed -- the demand-restriction win), and
``routing.flat.masked`` (stored entries masked across all solves)
alongside the standard engine span/counter surface.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

import repro.obs as obs_mod
from repro.devtools import sanitize
from repro.exceptions import (
    DisconnectedGraphError,
    MechanismError,
    NotBiconnectedError,
)
from repro.graphs.asgraph import ASGraph
from repro.obs import names as metric_names
from repro.routing.engines.base import CostMatrix, Engine
from repro.routing.flatgraph import FlatGraph, build_flat_graph
from repro.types import Cost, NodeId

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.mechanism.vcg import PriceRow, PriceTable
    from repro.routing.allpairs import AllPairsRoutes

__all__ = ["FlatEngine", "FlatSweepStats", "flat_price_rows"]

#: Tolerance of the defensive negative-price guard; identical to the
#: reference sweep's literal so both paths trip on the same values.
_NEGATIVE_PRICE_EPS = -1e-9


@dataclass
class FlatSweepStats:
    """Work accounting of one flat price sweep (obs + benchmark gates).

    ``solves`` counts masked Dijkstra calls (one per distinct transit
    node), ``rows`` the distance rows computed across them (the
    demand-restriction + orientation win: without either it would be
    ``solves * n``), ``masked`` the stored entries masked in place,
    ``entries`` the demanded ``(i, j, k)`` price evaluations, and
    ``max_block_rows`` the largest single distance block held alive --
    the peak-memory driver, bounded by ``max_k |sources_k|``.
    """

    solves: int = 0
    rows: int = 0
    masked: int = 0
    entries: int = 0
    max_block_rows: int = 0


#: The demanded (i, j, k) entries as parallel arrays in reference
#: sequence order: dense transit index, dense source, dense
#: destination, selected-LCP transit cost.
_EntryArrays = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _invert_transit_relation(
    graph: ASGraph,
    routes: "AllPairsRoutes",
    flat: FlatGraph,
) -> Tuple[List[Tuple[NodeId, NodeId, Tuple[NodeId, ...]]], _EntryArrays]:
    """Flatten the canonical routes into demanded-entry arrays.

    The scan runs in the reference engine's iteration order
    (destination ascending, sources ascending, transit nodes in path
    order), so an entry's *position* in the returned arrays is its
    reference-order sequence number and any violation found later can
    be raised with the exact witness the reference sweep would have
    raised first.

    The interpreter only touches each priced *pair* once (plus one
    list comprehension over its transit nodes); the per-entry
    expansion -- source, destination and LCP cost repeated across a
    pair's transit nodes -- happens in numpy.

    Returns the ordered list of priced pairs with their transit tuples
    and the parallel entry arrays ``(k, source, destination, lcp)``.
    """
    index = flat.index
    pairs: List[Tuple[NodeId, NodeId, Tuple[NodeId, ...]]] = []
    pair_src = array("q")
    pair_dst = array("q")
    pair_lcp = array("d")
    pair_width = array("q")
    entry_k = array("q")
    for destination in graph.nodes:
        tree = routes.tree(destination)
        dj = index[destination]
        for source in tree.sources():
            path = tree.path(source)
            if len(path) == 2:
                continue  # direct link: no transit nodes, no prices
            transit = path[1:-1]
            pairs.append((source, destination, transit))
            pair_src.append(index[source])
            pair_dst.append(dj)
            pair_lcp.append(tree.cost(source))
            pair_width.append(len(transit))
            entry_k.extend([index[k] for k in transit])

    def compact(buffer: array, dtype: type) -> np.ndarray:
        if not len(buffer):
            return np.empty(0, dtype=dtype)
        return np.frombuffer(buffer, dtype=dtype)

    width = compact(pair_width, np.int64)
    entry_pair = np.repeat(np.arange(len(pairs), dtype=np.int64), width)
    e_k = compact(entry_k, np.int64)
    e_src = compact(pair_src, np.int64)[entry_pair]
    e_dst = compact(pair_dst, np.int64)[entry_pair]
    e_lcp = compact(pair_lcp, np.float64)[entry_pair]
    return pairs, (e_k, e_src, e_dst, e_lcp)


def flat_price_rows(
    graph: ASGraph,
    routes: Optional["AllPairsRoutes"] = None,
    *,
    stats: Optional[FlatSweepStats] = None,
) -> Dict[Tuple[NodeId, NodeId], "PriceRow"]:
    """Theorem 1 price rows via the batched, demand-restricted sweep.

    Returns the same ``(source, destination) -> {k: price}`` mapping as
    :func:`repro.mechanism.vcg.compute_price_table` stores (direct-link
    pairs omitted); *stats*, when given, is filled with the sweep's
    work accounting.
    """
    from repro.routing.allpairs import all_pairs_lcp

    routes = routes if routes is not None else all_pairs_lcp(graph)
    stats = stats if stats is not None else FlatSweepStats()
    flat = build_flat_graph(graph)
    pairs, (e_k, e_src, e_dst, e_lcp) = _invert_transit_relation(graph, routes, flat)
    total_entries = int(e_k.shape[0])
    stats.entries = total_entries
    n = flat.num_nodes

    prices = np.empty(total_entries, dtype=np.float64)
    #: (sequence, kind, dense k, dense source, dense destination,
    #: price); kind 0 = infinite detour, 1 = negative price.  The
    #: minimum sequence is the witness the reference raises first.
    first_violation: Optional[Tuple[int, int, int, int, int, float]] = None

    # Group the entries by transit node: a stable argsort keeps each
    # group in reference sequence order, and the group slices *are*
    # the global sequence numbers of its entries.
    order = np.argsort(e_k, kind="stable")
    k_values, k_counts = np.unique(e_k, return_counts=True)
    k_stops = np.cumsum(k_counts)

    for ki, start, stop in zip(
        k_values.tolist(), (k_stops - k_counts).tolist(), k_stops.tolist()
    ):
        seq = order[start:stop]
        src = e_src[seq]
        dst = e_dst[seq]
        lcp = e_lcp[seq]

        # Transit cost is symmetric under the w(u -> v) = c_v
        # reduction (both directions sum the same interior node
        # costs), so each *unordered* pair needs one distance row.
        # Orient every pair onto the endpoint covering the most of
        # this k's demand (ties to the smaller dense index): for the
        # near-bipartite demand a popular transit node induces, this
        # collapses the Dijkstra sources onto the small side.
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        unordered, member = np.unique(lo * n + hi, return_inverse=True)
        u_lo = unordered // n
        u_hi = unordered - u_lo * n
        cover = np.bincount(u_lo, minlength=n) + np.bincount(u_hi, minlength=n)
        lo_wins = (cover[u_lo] > cover[u_hi]) | (
            (cover[u_lo] == cover[u_hi]) & (u_lo < u_hi)
        )
        solver = np.where(lo_wins, u_lo, u_hi)
        other = np.where(lo_wins, u_hi, u_lo)
        sources = np.unique(solver)

        with flat.masked(ki) as matrix:
            block = _csgraph_dijkstra(
                matrix,
                directed=True,
                indices=sources,
                return_predecessors=False,
            )
        stats.solves += 1
        stats.rows += int(sources.shape[0])
        stats.masked += flat.degree(ki)
        stats.max_block_rows = max(stats.max_block_rows, int(sources.shape[0]))

        u_detour = block[np.searchsorted(sources, solver), other] - flat.costs[other]
        detour = u_detour[member]
        entry_prices = flat.costs[ki] + detour - lcp
        prices[seq] = entry_prices

        infinite = ~np.isfinite(detour)
        negative = ~infinite & (entry_prices < _NEGATIVE_PRICE_EPS)
        if infinite.any() or negative.any():
            bad = np.flatnonzero(infinite | negative)
            at = bad[np.argmin(seq[bad])]
            candidate = (
                int(seq[at]),
                0 if infinite[at] else 1,
                ki,
                int(src[at]),
                int(dst[at]),
                float(entry_prices[at]),
            )
            if first_violation is None or candidate[0] < first_violation[0]:
                first_violation = candidate

    if first_violation is not None:
        _raise_reference_error(flat, first_violation)

    rows: Dict[Tuple[NodeId, NodeId], Dict[NodeId, Cost]] = {}
    position = 0
    for source, destination, transit in pairs:
        row: Dict[NodeId, Cost] = {}
        for offset, k in enumerate(transit):
            row[k] = float(prices[position + offset])
        position += len(transit)
        rows[(source, destination)] = row
    return rows


def _raise_reference_error(
    flat: FlatGraph,
    violation: Tuple[int, int, int, int, int, float],
) -> None:
    """Raise the violation exactly as the reference sweep would."""
    _sequence, kind, ki, si, dj, price = violation
    k = int(flat.node_ids[ki])
    source = int(flat.node_ids[si])
    destination = int(flat.node_ids[dj])
    if kind == 0:
        raise NotBiconnectedError(
            message=(
                f"price p^{k}_{{{source},{destination}}} undefined: "
                f"no {k}-avoiding path (graph not biconnected)"
            )
        )
    raise MechanismError(
        f"negative VCG price {price} for k={k}, pair "
        f"({source}, {destination}); avoiding cost below LCP cost"
    )


class FlatEngine(Engine):
    """Flat-CSR cost-only engine for large price tables."""

    name: ClassVar[str] = "flat"
    carries_paths: ClassVar[bool] = False

    # The flat sweep produces its own counters, so this engine manages
    # the observer explicitly (same signature as the reference engine,
    # per the RPR009 contract) instead of using the base-class wrapper.
    def price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
        *,
        obs: Optional[obs_mod.Obs] = None,
    ) -> "PriceTable":
        observer = obs_mod.active(obs)
        if observer is None:
            return self._price_table(graph, routes=routes)
        stats = FlatSweepStats()
        with observer.span(metric_names.SPAN_ENGINE_PRICE_TABLE, engine=self.name):
            table = self._build_table(graph, routes, stats)
        observer.count(metric_names.PRICE_ROWS, len(table.rows), engine=self.name)
        observer.count(metric_names.FLAT_SOLVES, stats.solves, engine=self.name)
        observer.count(metric_names.FLAT_ROWS, stats.rows, engine=self.name)
        observer.count(metric_names.FLAT_MASKED, stats.masked, engine=self.name)
        return table

    def _price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
    ) -> "PriceTable":
        return self._build_table(graph, routes, FlatSweepStats())

    def _build_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"],
        stats: FlatSweepStats,
    ) -> "PriceTable":
        from repro.mechanism.vcg import PriceTable
        from repro.routing.allpairs import all_pairs_lcp

        routes = routes if routes is not None else all_pairs_lcp(graph)
        rows = flat_price_rows(graph, routes=routes, stats=stats)
        table = PriceTable(routes=routes, rows=rows)
        if sanitize.enabled():
            sanitize.check_price_table(graph, table)
        return table

    def cost_matrix(self, graph: ASGraph) -> CostMatrix:
        flat = build_flat_graph(graph)
        dist = _csgraph_dijkstra(
            flat.matrix(), directed=True, return_predecessors=False
        )
        transit = dist - flat.costs[np.newaxis, :]
        np.fill_diagonal(transit, 0.0)
        if np.isinf(transit).any():
            raise DisconnectedGraphError("graph is disconnected")
        return CostMatrix(matrix=transit, index=flat.index)
