"""Vectorized cost-only engine built on ``scipy.sparse.csgraph``.

The pure-Python engines carry full paths so that tie-breaking and the
distributed protocol can be validated bit-for-bit.  For *scaling*
experiments only the costs matter, and those are computed here with the
classic node-cost-to-edge-cost reduction:

    directed weight ``w(u -> v) = c_v``

so the directed distance ``dist(i, j)`` equals the transit cost of the
best ``i -> j`` path *plus* ``c_j``; subtracting the destination cost
recovers the paper's transit cost.  k-avoiding costs are obtained by
deleting node ``k``'s row and column.

Zero-cost nodes are handled **exactly**: a zero transit cost becomes a
stored (explicit) zero in the CSR matrix, and ``csgraph`` treats stored
zeros of sparse input as real zero-weight edges, never as absent links.
Earlier revisions nudged stored zeros to a tiny positive weight and
compensated afterwards, which accumulated error across repeated
k-avoiding calls; the nudge is gone and
:func:`_directed_weight_matrix` now *verifies* that every zero survived
construction, so a scipy behavior change would fail loudly instead of
silently corrupting prices.  The ``c_k = 0`` regression tests pin the
exact round-trip.

These vectorized paths agree with the reference implementation on costs
(up to floating-point reassociation), which the test suite checks.
:func:`vcg_price_rows` extends the cost path to Theorem 1 prices: the
per-``k`` avoiding sweep -- the hot loop of the pure-Python price table
-- becomes one vectorized ``csgraph`` Dijkstra per distinct transit
node, evaluating ``c_k + Cost(P_{-k}) - Cost(P)`` from distance
matrices.

This module is the canonical home of the vectorized entry points
(:func:`all_pairs_costs`, :func:`avoiding_costs_matrix`,
:func:`vcg_price_rows`, :func:`vcg_price_matrices`); the old
``repro.routing.scipy_engine`` shim has been removed (lint rule RPR011
keeps its import from coming back).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.devtools import sanitize
from repro.exceptions import (
    DisconnectedGraphError,
    EngineError,
    MechanismError,
    NotBiconnectedError,
)
from repro.graphs.asgraph import ASGraph
from repro.routing.engines.base import CostMatrix, Engine
from repro.types import Cost, NodeId

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.mechanism.vcg import PriceRow, PriceTable
    from repro.routing.allpairs import AllPairsRoutes

__all__ = [
    "ScipyEngine",
    "all_pairs_costs",
    "avoiding_costs_matrix",
    "vcg_price_matrices",
    "vcg_price_rows",
]


def _directed_weight_matrix(
    graph: ASGraph,
    skip: Optional[NodeId] = None,
) -> Tuple[csr_matrix, np.ndarray, Dict[NodeId, int]]:
    """The ``w(u -> v) = c_v`` reduction as a CSR matrix.

    Zero node costs become *stored* zeros, which ``csgraph`` routines
    honor as zero-weight edges for sparse input; the construction is
    guarded so that a dropped zero (e.g. a future scipy calling
    ``eliminate_zeros`` internally) raises :class:`EngineError` instead
    of silently reporting the edge as absent.  *skip* omits one node
    entirely, implementing ``G - k``.
    """
    index = graph.index_of()
    n = graph.num_nodes
    costs = np.empty(n, dtype=float)
    for node, i in index.items():
        costs[i] = graph.cost(node)
    rows: List[int] = []
    cols: List[int] = []
    data: List[Cost] = []
    for u, v in graph.edges:
        if skip is not None and skip in (u, v):
            continue
        ui, vi = index[u], index[v]
        rows.append(ui)
        cols.append(vi)
        data.append(costs[vi])
        rows.append(vi)
        cols.append(ui)
        data.append(costs[ui])
    matrix = csr_matrix((data, (rows, cols)), shape=(n, n))
    if matrix.nnz != len(data):
        raise EngineError(
            "CSR construction dropped stored entries "
            f"({matrix.nnz} kept of {len(data)}); zero-cost nodes would "
            "no longer round-trip exactly"
        )
    return matrix, costs, index


def all_pairs_costs(graph: ASGraph) -> Tuple[np.ndarray, Dict[NodeId, int]]:
    """Transit-cost matrix ``C[i, j] = Cost(P(c; i, j))`` (0 on the
    diagonal), plus the node->index mapping.

    Zero-cost nodes are handled exactly: scipy's Dijkstra accepts zero
    edge weights (they are non-negative), and the weight matrix
    construction verifies none were dropped.
    """
    matrix, costs, index = _directed_weight_matrix(graph)
    dist = _csgraph_dijkstra(matrix, directed=True, return_predecessors=False)
    # dist[i, j] includes c_j for i != j; remove it.
    transit = dist - costs[np.newaxis, :]
    np.fill_diagonal(transit, 0.0)
    if np.isinf(transit).any():
        raise DisconnectedGraphError("graph is disconnected")
    return transit, index


def avoiding_costs_matrix(graph: ASGraph, k: NodeId) -> Tuple[np.ndarray, Dict[NodeId, int]]:
    """Transit-cost matrix of ``G - k`` (``inf`` where disconnected).

    Row/column of ``k`` itself are ``inf`` (excluding the diagonal).
    """
    pruned, costs, index = _directed_weight_matrix(graph, skip=k)
    ki = index[k]
    dist = _csgraph_dijkstra(pruned, directed=True, return_predecessors=False)
    transit = dist - costs[np.newaxis, :]
    np.fill_diagonal(transit, 0.0)
    transit[ki, :] = np.inf
    transit[:, ki] = np.inf
    return transit, index


def vcg_price_rows(
    graph: ASGraph,
    routes: Optional["AllPairsRoutes"] = None,
) -> Dict[Tuple[NodeId, NodeId], "PriceRow"]:
    """Theorem 1 price rows with the k-avoiding sweep vectorized.

    Path *selection* (which ``k`` is transit on which selected LCP)
    still comes from the canonical tie-broken routes -- prices are only
    defined relative to them -- but both cost terms of
    ``p^k_ij = c_k + Cost(P_{-k}(c; i, j)) - Cost(P(c; i, j))`` are read
    from ``csgraph`` distance matrices: one all-sources Dijkstra on
    ``G - k`` per *distinct* transit node ``k`` replaces the
    per-(destination, k) pure-Python sweep.  Returns the same
    ``(source, destination) -> {k: price}`` mapping that
    :func:`repro.mechanism.vcg.compute_price_table` stores (direct-link
    pairs omitted).

    The sweep runs **k-major**: the canonical routes are first inverted
    into the demanded entries per transit node, then each distinct
    ``k``'s dense detour matrix is computed *once*, consumed, and
    dropped.  Earlier revisions cached every matrix for the lifetime of
    the call -- 8 n^2 bytes each times hundreds of distinct transit
    nodes, O(n^3) memory, ~8 GB at n = 1000 -- whereas at most one
    detour matrix is alive here.  Violations are checked per entry and
    the earliest one *in the reference sweep's iteration order*
    (destination ascending, source ascending, transit position along
    the path) is raised with the reference's exact message, so error
    semantics are unchanged even though the computation order is not.
    """
    from repro.routing.allpairs import all_pairs_lcp

    routes = routes if routes is not None else all_pairs_lcp(graph)
    index = graph.index_of()
    # Reference-order scan: stamp every demanded (i, j, k) entry with a
    # global sequence number and bucket it under its transit node.  The
    # LCP cost term comes from the routes (``tree.cost``), exactly as
    # the reference sweep reads it.
    pairs: List[Tuple[NodeId, NodeId, Tuple[NodeId, ...]]] = []
    demand: Dict[NodeId, List[Tuple[int, int, int, Cost]]] = {}
    sequence = 0
    for destination in graph.nodes:
        tree = routes.tree(destination)
        dj = index[destination]
        for source in tree.sources():
            path = tree.path(source)
            if len(path) == 2:
                continue  # direct link: no transit nodes, no prices
            si = index[source]
            lcp_cost = tree.cost(source)
            transit = path[1:-1]
            pairs.append((source, destination, transit))
            for k in transit:
                demand.setdefault(k, []).append((sequence, si, dj, lcp_cost))
                sequence += 1

    prices = np.empty(sequence, dtype=np.float64)
    #: (sequence, kind, k, source, destination, price); kind 0 =
    #: infinite detour, 1 = negative price.  The minimum sequence is
    #: the witness the reference sweep raises first.
    first_violation: Optional[Tuple[int, int, NodeId, NodeId, NodeId, float]] = None
    node_ids = graph.nodes
    for k in sorted(demand):
        detours, _ = avoiding_costs_matrix(graph, k)
        entries = np.asarray([e[:3] for e in demand[k]], dtype=np.int64)
        lcp = np.asarray([e[3] for e in demand[k]], dtype=np.float64)
        seq, si, dj = entries[:, 0], entries[:, 1], entries[:, 2]
        detour = detours[si, dj]
        entry_prices = graph.cost(k) + detour - lcp
        prices[seq] = entry_prices
        infinite = ~np.isfinite(detour)
        negative = ~infinite & (entry_prices < -1e-9)
        if infinite.any() or negative.any():
            bad = np.flatnonzero(infinite | negative)
            at = bad[np.argmin(seq[bad])]
            candidate = (
                int(seq[at]),
                0 if infinite[at] else 1,
                k,
                node_ids[int(si[at])],
                node_ids[int(dj[at])],
                float(entry_prices[at]),
            )
            if first_violation is None or candidate[0] < first_violation[0]:
                first_violation = candidate

    if first_violation is not None:
        _sequence, kind, k, source, destination, price = first_violation
        if kind == 0:
            raise NotBiconnectedError(
                message=(
                    f"price p^{k}_{{{source},{destination}}} undefined: "
                    f"no {k}-avoiding path (graph not biconnected)"
                )
            )
        raise MechanismError(
            f"negative VCG price {price} for k={k}, pair "
            f"({source}, {destination}); avoiding cost below LCP cost"
        )

    rows: Dict[Tuple[NodeId, NodeId], Dict[NodeId, Cost]] = {}
    position = 0
    for source, destination, transit in pairs:
        row: Dict[NodeId, Cost] = {}
        for offset, k in enumerate(transit):
            row[k] = float(prices[position + offset])
        position += len(transit)
        rows[(source, destination)] = row
    return rows


def vcg_price_matrices(
    graph: ASGraph,
    routes: Optional["AllPairsRoutes"] = None,
) -> Dict[NodeId, csr_matrix]:
    """Sparse price matrices ``P_k[i, j] = p^k_ij`` per transit node ``k``.

    Cost-only vectorized variant of the mechanism's price table; used by
    the scaling benchmark (E11).  Entries are zero when ``k`` is not on
    the selected LCP -- which is almost everywhere, so each matrix is
    returned as a ``csr_matrix`` holding only the priced pairs.  (The
    dense predecessor allocated ``np.zeros((n, n))`` per transit node:
    O(n^3) bytes across a table whose non-zeros are O(n^2) total, which
    exhausted memory long before the price sweep itself did.)  Stored
    entries include *exact zeros* -- a transit node priced at 0.0 is a
    real row of the table, distinct from an off-path pair -- so
    consumers must read stored structure, not value magnitude.  Built
    on :func:`vcg_price_rows`, so the avoiding sweep runs inside
    ``csgraph`` rather than pure Python.
    """
    index = graph.index_of()
    n = graph.num_nodes
    triplets: Dict[NodeId, Tuple[List[int], List[int], List[Cost]]] = {}
    for (i, j), row in sorted(vcg_price_rows(graph, routes=routes).items()):
        for k in sorted(row):
            rows_cols_vals = triplets.setdefault(k, ([], [], []))
            rows_cols_vals[0].append(index[i])
            rows_cols_vals[1].append(index[j])
            rows_cols_vals[2].append(row[k])
    matrices: Dict[NodeId, csr_matrix] = {}
    for k in sorted(triplets):
        rows_idx, cols_idx, values = triplets[k]
        matrix = csr_matrix(
            (values, (rows_idx, cols_idx)), shape=(n, n), dtype=float
        )
        if matrix.nnz != len(values):
            raise EngineError(
                "sparse price-matrix construction dropped stored entries "
                f"({matrix.nnz} kept of {len(values)}); zero-priced "
                "transit rows would no longer round-trip"
            )
        matrices[k] = matrix
    return matrices


class ScipyEngine(Engine):
    """Vectorized cost-only engine for bulk cost/price workloads."""

    name: ClassVar[str] = "scipy"
    carries_paths: ClassVar[bool] = False

    def cost_matrix(self, graph: ASGraph) -> CostMatrix:
        matrix, index = all_pairs_costs(graph)
        return CostMatrix(matrix=matrix, index=index)

    def _price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
    ) -> "PriceTable":
        from repro.mechanism.vcg import PriceTable
        from repro.routing.allpairs import all_pairs_lcp

        routes = routes if routes is not None else all_pairs_lcp(graph)
        rows = vcg_price_rows(graph, routes=routes)
        table = PriceTable(routes=routes, rows=rows)
        if sanitize.enabled():
            sanitize.check_price_table(graph, table)
        return table
