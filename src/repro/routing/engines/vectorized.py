"""Vectorized cost-only engine built on ``scipy.sparse.csgraph``.

The pure-Python engines carry full paths so that tie-breaking and the
distributed protocol can be validated bit-for-bit.  For *scaling*
experiments only the costs matter, and those are computed here with the
classic node-cost-to-edge-cost reduction:

    directed weight ``w(u -> v) = c_v``

so the directed distance ``dist(i, j)`` equals the transit cost of the
best ``i -> j`` path *plus* ``c_j``; subtracting the destination cost
recovers the paper's transit cost.  k-avoiding costs are obtained by
deleting node ``k``'s row and column.

Zero-cost nodes are handled **exactly**: a zero transit cost becomes a
stored (explicit) zero in the CSR matrix, and ``csgraph`` treats stored
zeros of sparse input as real zero-weight edges, never as absent links.
Earlier revisions nudged stored zeros to a tiny positive weight and
compensated afterwards, which accumulated error across repeated
k-avoiding calls; the nudge is gone and
:func:`_directed_weight_matrix` now *verifies* that every zero survived
construction, so a scipy behavior change would fail loudly instead of
silently corrupting prices.  The ``c_k = 0`` regression tests pin the
exact round-trip.

These vectorized paths agree with the reference implementation on costs
(up to floating-point reassociation), which the test suite checks.
:func:`vcg_price_rows` extends the cost path to Theorem 1 prices: the
per-``k`` avoiding sweep -- the hot loop of the pure-Python price table
-- becomes one vectorized ``csgraph`` Dijkstra per distinct transit
node, evaluating ``c_k + Cost(P_{-k}) - Cost(P)`` from distance
matrices.

This module is the canonical home of the vectorized entry points
(:func:`all_pairs_costs`, :func:`avoiding_costs_matrix`,
:func:`vcg_price_rows`, :func:`vcg_price_matrices`); the old
``repro.routing.scipy_engine`` shim has been removed (lint rule RPR011
keeps its import from coming back).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.devtools import sanitize
from repro.exceptions import (
    DisconnectedGraphError,
    EngineError,
    MechanismError,
    NotBiconnectedError,
)
from repro.graphs.asgraph import ASGraph
from repro.routing.engines.base import CostMatrix, Engine
from repro.types import Cost, NodeId

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.mechanism.vcg import PriceRow, PriceTable
    from repro.routing.allpairs import AllPairsRoutes

__all__ = [
    "ScipyEngine",
    "all_pairs_costs",
    "avoiding_costs_matrix",
    "vcg_price_matrices",
    "vcg_price_rows",
]


def _directed_weight_matrix(
    graph: ASGraph,
    skip: Optional[NodeId] = None,
) -> Tuple[csr_matrix, np.ndarray, Dict[NodeId, int]]:
    """The ``w(u -> v) = c_v`` reduction as a CSR matrix.

    Zero node costs become *stored* zeros, which ``csgraph`` routines
    honor as zero-weight edges for sparse input; the construction is
    guarded so that a dropped zero (e.g. a future scipy calling
    ``eliminate_zeros`` internally) raises :class:`EngineError` instead
    of silently reporting the edge as absent.  *skip* omits one node
    entirely, implementing ``G - k``.
    """
    index = graph.index_of()
    n = graph.num_nodes
    costs = np.empty(n, dtype=float)
    for node, i in index.items():
        costs[i] = graph.cost(node)
    rows: List[int] = []
    cols: List[int] = []
    data: List[Cost] = []
    for u, v in graph.edges:
        if skip is not None and skip in (u, v):
            continue
        ui, vi = index[u], index[v]
        rows.append(ui)
        cols.append(vi)
        data.append(costs[vi])
        rows.append(vi)
        cols.append(ui)
        data.append(costs[ui])
    matrix = csr_matrix((data, (rows, cols)), shape=(n, n))
    if matrix.nnz != len(data):
        raise EngineError(
            "CSR construction dropped stored entries "
            f"({matrix.nnz} kept of {len(data)}); zero-cost nodes would "
            "no longer round-trip exactly"
        )
    return matrix, costs, index


def all_pairs_costs(graph: ASGraph) -> Tuple[np.ndarray, Dict[NodeId, int]]:
    """Transit-cost matrix ``C[i, j] = Cost(P(c; i, j))`` (0 on the
    diagonal), plus the node->index mapping.

    Zero-cost nodes are handled exactly: scipy's Dijkstra accepts zero
    edge weights (they are non-negative), and the weight matrix
    construction verifies none were dropped.
    """
    matrix, costs, index = _directed_weight_matrix(graph)
    dist = _csgraph_dijkstra(matrix, directed=True, return_predecessors=False)
    # dist[i, j] includes c_j for i != j; remove it.
    transit = dist - costs[np.newaxis, :]
    np.fill_diagonal(transit, 0.0)
    if np.isinf(transit).any():
        raise DisconnectedGraphError("graph is disconnected")
    return transit, index


def avoiding_costs_matrix(graph: ASGraph, k: NodeId) -> Tuple[np.ndarray, Dict[NodeId, int]]:
    """Transit-cost matrix of ``G - k`` (``inf`` where disconnected).

    Row/column of ``k`` itself are ``inf`` (excluding the diagonal).
    """
    pruned, costs, index = _directed_weight_matrix(graph, skip=k)
    ki = index[k]
    dist = _csgraph_dijkstra(pruned, directed=True, return_predecessors=False)
    transit = dist - costs[np.newaxis, :]
    np.fill_diagonal(transit, 0.0)
    transit[ki, :] = np.inf
    transit[:, ki] = np.inf
    return transit, index


def vcg_price_rows(
    graph: ASGraph,
    routes: Optional["AllPairsRoutes"] = None,
) -> Dict[Tuple[NodeId, NodeId], "PriceRow"]:
    """Theorem 1 price rows with the k-avoiding sweep vectorized.

    Path *selection* (which ``k`` is transit on which selected LCP)
    still comes from the canonical tie-broken routes -- prices are only
    defined relative to them -- but both cost terms of
    ``p^k_ij = c_k + Cost(P_{-k}(c; i, j)) - Cost(P(c; i, j))`` are read
    from ``csgraph`` distance matrices: one all-sources Dijkstra on
    ``G - k`` per *distinct* transit node ``k`` replaces the
    per-(destination, k) pure-Python sweep.  Returns the same
    ``(source, destination) -> {k: price}`` mapping that
    :func:`repro.mechanism.vcg.compute_price_table` stores (direct-link
    pairs omitted).
    """
    from repro.routing.allpairs import all_pairs_lcp

    routes = routes if routes is not None else all_pairs_lcp(graph)
    base, index = all_pairs_costs(graph)
    avoiding: Dict[NodeId, np.ndarray] = {}
    rows: Dict[Tuple[NodeId, NodeId], Dict[NodeId, Cost]] = {}
    for destination in graph.nodes:
        tree = routes.tree(destination)
        dj = index[destination]
        for source in tree.sources():
            path = tree.path(source)
            if len(path) == 2:
                continue  # direct link: no transit nodes, no prices
            si = index[source]
            lcp_cost = base[si, dj]
            row: Dict[NodeId, Cost] = {}
            for k in path[1:-1]:
                detours = avoiding.get(k)
                if detours is None:
                    detours, _ = avoiding_costs_matrix(graph, k)
                    avoiding[k] = detours
                detour_cost = detours[si, dj]
                if not np.isfinite(detour_cost):
                    raise NotBiconnectedError(
                        message=(
                            f"price p^{k}_{{{source},{destination}}} undefined: "
                            f"no {k}-avoiding path (graph not biconnected)"
                        )
                    )
                price = float(graph.cost(k) + detour_cost - lcp_cost)
                if price < -1e-9:
                    raise MechanismError(
                        f"negative VCG price {price} for k={k}, pair "
                        f"({source}, {destination}); avoiding cost below LCP cost"
                    )
                row[k] = price
            rows[(source, destination)] = row
    return rows


def vcg_price_matrices(
    graph: ASGraph,
    routes: Optional["AllPairsRoutes"] = None,
) -> Dict[NodeId, np.ndarray]:
    """Price matrices ``P_k[i, j] = p^k_ij`` for each transit node ``k``.

    Cost-only vectorized variant of the mechanism's price table; used by
    the scaling benchmark (E11).  Entries are zero when ``k`` is not on
    the selected LCP.  Built on :func:`vcg_price_rows`, so the avoiding
    sweep runs inside ``csgraph`` rather than pure Python.
    """
    index = graph.index_of()
    n = graph.num_nodes
    matrices: Dict[NodeId, np.ndarray] = {}
    for (i, j), row in vcg_price_rows(graph, routes=routes).items():
        for k in sorted(row):
            matrix = matrices.setdefault(k, np.zeros((n, n)))
            matrix[index[i], index[j]] = row[k]
    return matrices


class ScipyEngine(Engine):
    """Vectorized cost-only engine for bulk cost/price workloads."""

    name: ClassVar[str] = "scipy"
    carries_paths: ClassVar[bool] = False

    def cost_matrix(self, graph: ASGraph) -> CostMatrix:
        matrix, index = all_pairs_costs(graph)
        return CostMatrix(matrix=matrix, index=index)

    def _price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
    ) -> "PriceTable":
        from repro.mechanism.vcg import PriceTable
        from repro.routing.allpairs import all_pairs_lcp

        routes = routes if routes is not None else all_pairs_lcp(graph)
        rows = vcg_price_rows(graph, routes=routes)
        table = PriceTable(routes=routes, rows=rows)
        if sanitize.enabled():
            sanitize.check_price_table(graph, table)
        return table
