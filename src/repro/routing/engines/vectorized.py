"""The scipy-backed cost-only engine.

Wraps :mod:`repro.routing.scipy_engine`: all-pairs costs come from one
``csgraph`` Dijkstra over the ``w(u -> v) = c_v`` reduction, and prices
from one vectorized ``G - k`` Dijkstra per distinct transit node
(:func:`repro.routing.scipy_engine.vcg_price_rows`).  Path *selection*
still uses the canonical tie-broken routes -- prices are defined
relative to them -- so :meth:`ScipyEngine.price_table` returns a true
:class:`~repro.mechanism.vcg.PriceTable`; only the cost arithmetic is
vectorized, which is where the reference engine spends nearly all of
its time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Optional

from repro.devtools import sanitize
from repro.graphs.asgraph import ASGraph
from repro.routing.engines.base import CostMatrix, Engine
from repro.routing.scipy_engine import all_pairs_costs, vcg_price_rows

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.mechanism.vcg import PriceTable
    from repro.routing.allpairs import AllPairsRoutes


class ScipyEngine(Engine):
    """Vectorized cost-only engine for bulk cost/price workloads."""

    name: ClassVar[str] = "scipy"
    carries_paths: ClassVar[bool] = False

    def cost_matrix(self, graph: ASGraph) -> CostMatrix:
        matrix, index = all_pairs_costs(graph)
        return CostMatrix(matrix=matrix, index=index)

    def price_table(
        self,
        graph: ASGraph,
        routes: Optional["AllPairsRoutes"] = None,
    ) -> "PriceTable":
        from repro.mechanism.vcg import PriceTable
        from repro.routing.allpairs import all_pairs_lcp

        routes = routes or all_pairs_lcp(graph)
        rows = vcg_price_rows(graph, routes=routes)
        table = PriceTable(routes=routes, rows=rows)
        if sanitize.enabled():
            sanitize.check_price_table(graph, table)
        return table
