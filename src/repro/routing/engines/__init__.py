"""Unified registry of route/price computation engines.

Every backend that can answer "all selected LCPs" / "all Theorem 1
prices" for an :class:`~repro.graphs.asgraph.ASGraph` registers here
under a stable name:

============= =========================================== ==============
name          backend                                     carries paths
============= =========================================== ==============
reference     serial pure Python (semantics-defining)     yes
scipy         vectorized ``scipy.sparse.csgraph``         no (cost-only)
flat          flat-CSR demand-restricted price sweep      no (cost-only)
flat-parallel flat sweep sharded over shared memory       no (cost-only)
parallel      multiprocessing shards of destinations      yes
incremental   epoch-cached warm-start (stateful)          yes
============= =========================================== ==============

Callers select an engine by name through the ``engine=`` parameter of
:func:`repro.routing.allpairs.all_pairs_lcp` and
:func:`repro.mechanism.vcg.compute_price_table`, the ``--engine`` flag
of the CLI, or directly via :func:`get_engine`.  The differential test
harness (``tests/test_engine_differential.py``) holds every registered
engine to the reference answers, and the golden fixtures pin the
Fig. 1 / Fig. 2 artifacts bit-for-bit, so registration is a correctness
contract, not just a lookup convenience.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple, Type, Union, cast

from repro.exceptions import EngineError
from repro.routing.engines.base import CostMatrix, Engine
from repro.routing.engines.flat import FlatEngine, FlatSweepStats, flat_price_rows
from repro.routing.engines.flat_parallel import FlatParallelEngine
from repro.routing.engines.incremental import CacheStats, IncrementalEngine
from repro.routing.engines.parallel import (
    ParallelEngine,
    all_pairs_sharded,
    price_table_sharded,
    shard_destinations,
)
from repro.routing.engines.reference import ReferenceEngine
from repro.routing.engines.vectorized import ScipyEngine

__all__ = [
    "CacheStats",
    "CostMatrix",
    "Engine",
    "EngineSpec",
    "FlatEngine",
    "FlatParallelEngine",
    "FlatSweepStats",
    "IncrementalEngine",
    "ParallelEngine",
    "ReferenceEngine",
    "ScipyEngine",
    "all_pairs_sharded",
    "engine_names",
    "flat_price_rows",
    "get_engine",
    "price_table_sharded",
    "register",
    "resolve_engine",
    "shard_destinations",
]

#: A caller-facing engine selector: a registry name or an instance.
EngineSpec = Union[str, Engine]

_REGISTRY: Dict[str, Type[Engine]] = {}


def register(engine_class: Type[Engine]) -> Type[Engine]:
    """Register an engine class under its :attr:`Engine.name`.

    Usable as a decorator by out-of-tree backends; re-registering a
    name is an error (engine names are a stable CLI surface).
    """
    name = engine_class.name
    if name in _REGISTRY:
        raise EngineError(f"engine name {name!r} is already registered")
    _REGISTRY[name] = engine_class
    return engine_class


def engine_names() -> Tuple[str, ...]:
    """All registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def engine_classes() -> List[Type[Engine]]:
    """All registered engine classes, in name order."""
    return [_REGISTRY[name] for name in engine_names()]


def get_engine(name: str, **options: Any) -> Engine:
    """Instantiate a registered engine by name.

    *options* are forwarded to the engine constructor (e.g.
    ``get_engine("parallel", workers=2)``).
    """
    try:
        engine_class = _REGISTRY[name]
    except KeyError:
        known = ", ".join(engine_names())
        raise EngineError(f"unknown engine {name!r}; registered: {known}") from None
    factory = cast(Callable[..., Engine], engine_class)
    return factory(**options)


def resolve_engine(engine: EngineSpec) -> Engine:
    """Normalize an ``engine=`` argument (name or instance) to an
    :class:`Engine` instance."""
    if isinstance(engine, Engine):
        return engine
    return get_engine(engine)


register(ReferenceEngine)
register(ScipyEngine)
register(FlatEngine)
register(FlatParallelEngine)
register(ParallelEngine)
register(IncrementalEngine)
