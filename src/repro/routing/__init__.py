"""Centralized lowest-cost-path routing on node-cost AS graphs.

This package is the *reference* implementation of what the paper assumes
BGP (suitably configured) computes: for every destination ``j`` a
loop-free tree ``T(j)`` of lowest-cost paths, where the cost of a path is
the sum of its transit (intermediate) node costs.  The distributed BGP
engine in :mod:`repro.bgp` is validated against it, and the VCG pricing
in :mod:`repro.mechanism` is built on it.

Key modules:

* :mod:`repro.routing.paths` -- path cost/validation helpers and the
  canonical accumulation convention shared with the BGP engine.
* :mod:`repro.routing.tiebreak` -- the total order on candidate routes
  (cost, then hops, then lexicographic path) that makes selected LCPs
  suffix-consistent, hence loop-free.
* :mod:`repro.routing.dijkstra` -- destination-rooted generalized
  Dijkstra producing a :class:`~repro.routing.dijkstra.RouteTree`.
* :mod:`repro.routing.allpairs` -- all-pairs routes (n trees).
* :mod:`repro.routing.avoiding` -- lowest-cost k-avoiding paths, the
  second ingredient of the VCG price.
* :mod:`repro.routing.engines` -- the unified engine registry
  (``reference`` | ``scipy`` | ``parallel``) behind the ``engine=``
  parameter of :func:`all_pairs_lcp` and
  :func:`repro.mechanism.vcg.compute_price_table`; the vectorized
  cost-only entry points live in
  :mod:`repro.routing.engines.vectorized`.
"""

from repro.routing.allpairs import AllPairsRoutes, all_pairs_lcp
from repro.routing.avoiding import (
    avoiding_cost,
    avoiding_path,
    avoiding_tree,
)
from repro.routing.dijkstra import RouteTree, route_tree
from repro.routing.engines import Engine, engine_names, get_engine
from repro.routing.paths import transit_cost, validate_path
from repro.routing.tiebreak import route_key

__all__ = [
    "AllPairsRoutes",
    "all_pairs_lcp",
    "avoiding_cost",
    "avoiding_path",
    "avoiding_tree",
    "Engine",
    "engine_names",
    "get_engine",
    "RouteTree",
    "route_tree",
    "transit_cost",
    "validate_path",
    "route_key",
]
