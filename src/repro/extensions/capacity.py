"""Capacities and congestion: probing the Section 7 open problem.

The paper closes by suggesting the model be augmented "with link or
node capacities in order to tackle the problem of routing in congested
networks... it seems plausible that transit traffic imposes costs only
in the presence of congestion."  This module does not *solve* that open
problem (nobody has, within the paper's framework); it builds the
instrumentation needed to see why it is hard:

* :func:`node_loads` / :func:`congestion_report` -- per-node transit
  load when a traffic matrix rides the selected LCPs, and which nodes
  exceed their declared capacity.
* :func:`greedy_decongest` -- a simple off-mechanism repair that moves
  whole flows from overloaded nodes onto their lowest-cost avoiding
  paths, largest-flow-first, and reports the social-cost premium paid
  for feasibility.
* The demonstrable tension (asserted in tests and experiment E14): the
  VCG prices of Theorem 1 are *independent of capacities and load*, so
  a congested node is paid exactly as if it were idle, and decongested
  routings are no longer lowest-cost -- the Green-Laffont argument that
  pinned the mechanism no longer applies to the repaired routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ExperimentError
from repro.graphs.asgraph import ASGraph
from repro.routing.allpairs import AllPairsRoutes, all_pairs_lcp
from repro.routing.avoiding import avoiding_tree
from repro.types import Cost, NodeId, PathTuple

PairKey = Tuple[NodeId, NodeId]


def node_loads(
    routes_by_pair: Mapping[PairKey, PathTuple],
    traffic: Mapping[PairKey, float],
) -> Dict[NodeId, float]:
    """Transit load per node: packets it forwards under these routes."""
    loads: Dict[NodeId, float] = {}
    for pair, intensity in traffic.items():
        if not intensity:
            continue
        path = routes_by_pair.get(pair)
        if path is None:
            raise ExperimentError(f"no route for traffic pair {pair}")
        for node in path[1:-1]:
            loads[node] = loads.get(node, 0.0) + intensity
    return loads


@dataclass(frozen=True)
class CongestionReport:
    """Load vs capacity under one routing."""

    loads: Dict[NodeId, float]
    capacities: Dict[NodeId, float]
    total_cost: Cost

    @property
    def overloaded(self) -> Tuple[NodeId, ...]:
        return tuple(
            sorted(
                node
                for node, load in self.loads.items()
                if load > self.capacities.get(node, float("inf")) + 1e-9
            )
        )

    @property
    def feasible(self) -> bool:
        return not self.overloaded

    def utilization(self, node: NodeId) -> float:
        capacity = self.capacities.get(node, float("inf"))
        if capacity == float("inf"):
            return 0.0
        if capacity == 0:
            return float("inf") if self.loads.get(node, 0.0) > 0 else 0.0
        return self.loads.get(node, 0.0) / capacity

    @property
    def max_utilization(self) -> float:
        return max(
            (self.utilization(node) for node in self.capacities),
            default=0.0,
        )


def congestion_report(
    graph: ASGraph,
    capacities: Mapping[NodeId, float],
    traffic: Mapping[PairKey, float],
    routes: Optional[AllPairsRoutes] = None,
) -> CongestionReport:
    """Load/capacity analysis of LCP routing for one instance."""
    routes = routes or all_pairs_lcp(graph)
    routes_by_pair = dict(routes.paths)
    loads = node_loads(routes_by_pair, traffic)
    total = sum(
        intensity * graph.path_cost(routes_by_pair[pair])
        if len(routes_by_pair[pair]) > 2
        else 0.0
        for pair, intensity in traffic.items()
        if intensity
    )
    return CongestionReport(
        loads=loads, capacities=dict(capacities), total_cost=total
    )


@dataclass
class DecongestionResult:
    """Outcome of the greedy feasibility repair."""

    moved_pairs: List[PairKey] = field(default_factory=list)
    before: Optional[CongestionReport] = None
    after: Optional[CongestionReport] = None
    routes_by_pair: Dict[PairKey, PathTuple] = field(default_factory=dict)

    @property
    def cost_premium(self) -> Cost:
        """Extra social cost paid for feasibility."""
        if self.before is None or self.after is None:
            return 0.0
        return self.after.total_cost - self.before.total_cost


def greedy_decongest(
    graph: ASGraph,
    capacities: Mapping[NodeId, float],
    traffic: Mapping[PairKey, float],
    max_moves: Optional[int] = None,
) -> DecongestionResult:
    """Move flows off overloaded nodes onto avoiding paths, biggest first.

    A deliberately simple repair: while some node is overloaded, take
    the largest flow transiting it and reroute that whole flow along
    its lowest-cost path avoiding the overloaded node (if any exists).
    Terminates when feasible, out of moves, or stuck.  The result
    quantifies the cost premium feasibility demands -- the quantity a
    capacity-aware mechanism would have to price, which Theorem 1's
    mechanism cannot.
    """
    routes = all_pairs_lcp(graph)
    routes_by_pair: Dict[PairKey, PathTuple] = dict(routes.paths)
    result = DecongestionResult()
    result.before = congestion_report(graph, capacities, traffic, routes=routes)

    budget = max_moves if max_moves is not None else 4 * len(traffic)
    moves = 0
    while moves < budget:
        loads = node_loads(routes_by_pair, traffic)
        overloaded = [
            node
            for node, load in loads.items()
            if load > capacities.get(node, float("inf")) + 1e-9
        ]
        if not overloaded:
            break
        hot = max(overloaded, key=lambda node: loads[node])
        # largest flow currently transiting the hot node
        candidates = [
            (intensity, pair)
            for pair, intensity in traffic.items()
            if intensity and hot in routes_by_pair[pair][1:-1]
        ]
        if not candidates:
            break
        moved = False
        for intensity, pair in sorted(candidates, reverse=True):
            source, destination = pair
            detour = avoiding_tree(graph, destination, hot)
            if not detour.has_route(source):
                continue
            routes_by_pair[pair] = detour.path(source)
            result.moved_pairs.append(pair)
            moved = True
            break
        if not moved:
            break  # stuck: no flow on the hot node can avoid it
        moves += 1

    loads = node_loads(routes_by_pair, traffic)
    total = sum(
        intensity * graph.path_cost(routes_by_pair[pair])
        if len(routes_by_pair[pair]) > 2
        else 0.0
        for pair, intensity in traffic.items()
        if intensity
    )
    result.after = CongestionReport(
        loads=loads, capacities=dict(capacities), total_cost=total
    )
    result.routes_by_pair = routes_by_pair
    return result
