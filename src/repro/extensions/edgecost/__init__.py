"""The per-neighbor (edge) cost generalization of Section 3.

Each node ``k`` declares a cost ``c_k(v)`` for every neighbor ``v`` it
can forward to; the transit cost of a path charges every intermediate
node its cost toward its *next hop on that path*.  Nodes remain the
strategic agents (a node's type is its whole cost vector), and the VCG
payments keep the Theorem 1 shape with ``c_k`` read off the selected
path:

    ``p^k_ij = c_k(next_k) + S_{-k}(i, j) - S(i, j)``

Routing works on the edge metric ``w(u -> v) = c_u(v)`` (per-neighbor
costs break optimal substructure over nodes; see
:mod:`repro.extensions.edgecost.routing`), and the distributed
computation rides the same BGP exchange as the base protocol (see
:mod:`repro.extensions.edgecost.distributed`).
"""

from repro.extensions.edgecost.model import EdgeCostGraph
from repro.extensions.edgecost.routing import (
    EdgeCostRoutes,
    edgecost_avoiding_routes,
    edgecost_routes,
)
from repro.extensions.edgecost.mechanism import (
    EdgeCostPriceTable,
    compute_edgecost_price_table,
    edgecost_utility,
)
from repro.extensions.edgecost.distributed import (
    EdgeCostPriceNode,
    EdgeCostResult,
    run_edgecost_mechanism,
    verify_edgecost_result,
)

__all__ = [
    "EdgeCostGraph",
    "EdgeCostRoutes",
    "edgecost_avoiding_routes",
    "edgecost_routes",
    "EdgeCostPriceTable",
    "compute_edgecost_price_table",
    "edgecost_utility",
    "EdgeCostPriceNode",
    "EdgeCostResult",
    "run_edgecost_mechanism",
    "verify_edgecost_result",
]
