"""BGP-based price computation under per-neighbor costs.

The Section 6 machinery adapts as follows.  Working on the edge metric
``w(u -> v) = c_u(v)`` (see :mod:`repro.extensions.edgecost.routing`),
each node maintains per destination:

* its **tree route** -- the ``C``-shortest path, which is what it
  advertises and how it forwards transit traffic.  Selection is the
  ordinary path-vector rule with extension cost ``c_self(neighbor)``
  (the extender pays its own first edge, so ``C`` includes it).
* an **avoiding-cost row** ``A^k = C_{-k}(self)`` for each transit node
  ``k`` on its tree path, riding in the advertisement's price slot.
  ``A`` obeys the one-line Bellman relation
  ``C_{-k}(i) = min over neighbors v != k of c_i(v) + C_{-k}(v)``,
  where the neighbor's term is its advertised ``A^k`` when ``k`` is on
  its path and its advertised ``C`` otherwise (its tree path already
  avoids ``k``).  Every candidate is backed by a real k-avoiding walk
  in the advert snapshot, so the recomputation is stale-safe -- this
  replaces the four-case analysis, which collapses to this relation on
  the ``C`` metric.
* its **source route and prices** -- the minimizing neighbor's tree
  path (``S = C(a*)``), and per transit node ``k``:
  ``p^k_ij = c_k(next_k) + S_{-k} - S`` with
  ``S_{-k} = min over neighbors a != k`` of the same neighbor terms.
  These are local outputs; they ride in no message.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.bgp.engine import SynchronousEngine
from repro.bgp.node import BGPNode
from repro.bgp.policy import LowestCostPolicy, SelectionPolicy
from repro.bgp.table import RouteEntry
from repro.extensions.edgecost.mechanism import (
    EdgeCostPriceTable,
    compute_edgecost_price_table,
)
from repro.extensions.edgecost.model import EdgeCostGraph
from repro.types import Cost, NodeId, PathTuple

INF = float("inf")


class EdgeCostPriceNode(BGPNode):
    """A node computing routes and VCG prices under per-neighbor costs."""

    RESTART_ON_EVENT = True

    def __init__(
        self,
        node_id: NodeId,
        forwarding_costs: Dict[NodeId, Cost],
        policy: Optional[SelectionPolicy] = None,
    ) -> None:
        super().__init__(node_id, 0.0, policy)
        self.forwarding_costs = dict(forwarding_costs)
        # destination -> {k -> C_{-k}(self)} for k transit on the tree path
        self.avoiding_rows: Dict[NodeId, Dict[NodeId, Cost]] = {}
        # destination -> selected source route (path, S, per-node costs)
        self.source_routes: Dict[NodeId, RouteEntry] = {}
        # destination -> {k -> p^k_{self,destination}}
        self.source_prices: Dict[NodeId, Dict[NodeId, Cost]] = {}

    # ------------------------------------------------------------------
    # Tree-route selection: C includes our own first-edge cost.
    # ------------------------------------------------------------------
    def _select_route(self, destination: NodeId) -> Optional[RouteEntry]:
        best_key = None
        best_entry: Optional[RouteEntry] = None
        for neighbor, advert in sorted(self.rib_in.adverts_for(destination).items()):
            if self.node_id in advert.path:
                continue
            cost = advert.cost + self.forwarding_costs[neighbor]
            path = (self.node_id,) + advert.path
            key = self.policy.key(cost, path)
            if best_key is None or key < best_key:
                best_key = key
                node_costs = dict(advert.node_costs)
                node_costs[self.node_id] = self.forwarding_costs[neighbor]
                best_entry = RouteEntry(path=path, cost=cost, node_costs=node_costs)
        return best_entry

    # ------------------------------------------------------------------
    # Derived state: avoiding rows, source routes, prices.
    # ------------------------------------------------------------------
    def _neighbor_avoiding_term(self, advert, k: NodeId) -> Cost:
        """The neighbor's k-avoiding C value from its advert snapshot."""
        if k in advert.path:
            value = advert.prices.get(k, INF)
            return value if value is not None else INF
        return advert.cost  # its tree path avoids k already

    def _after_decide(
        self,
        changed_destinations: Set[NodeId],
        dirty_destinations: Optional[Set[NodeId]] = None,
    ) -> Set[NodeId]:
        # Every derived quantity below is a per-destination function of
        # that destination's stored advertisements (plus the selected
        # route), so a dirty decision restricts the sweep to
        # ``dirty | changed``.  Returns the destinations whose
        # *advertised* avoiding row changed.
        rows_changed: Set[NodeId] = set()
        if dirty_destinations is None:
            scope_set = None
            # --- avoiding-cost rows for the advertised tree routes ----
            for destination in list(self.avoiding_rows):
                if destination not in self.routes:
                    del self.avoiding_rows[destination]
                    rows_changed.add(destination)
            scope = sorted(self.routes)
        else:
            scope_set = set(dirty_destinations) | set(changed_destinations)
            for destination in sorted(scope_set):
                if destination not in self.routes and destination in self.avoiding_rows:
                    del self.avoiding_rows[destination]
                    rows_changed.add(destination)
            scope = sorted(d for d in scope_set if d in self.routes)
        for destination in scope:
            entry = self.routes[destination]
            row: Dict[NodeId, Cost] = {}
            for k in entry.transit:
                best = INF
                for neighbor in self.rib_in.neighbors():
                    if neighbor == k:
                        continue
                    advert = self.rib_in.advert(neighbor, destination)
                    if advert is None:
                        continue
                    term = self._neighbor_avoiding_term(advert, k)
                    candidate = self.forwarding_costs[neighbor] + term
                    if candidate < best:
                        best = candidate
                row[k] = best
            if row != self.avoiding_rows.get(destination):
                rows_changed.add(destination)
            self.avoiding_rows[destination] = row

        # --- source routes and prices (local outputs; no message) ------
        if scope_set is None:
            self.source_routes.clear()
            self.source_prices.clear()
            destinations = set(self.rib_in.destinations())
            destinations.discard(self.node_id)
            source_scope = sorted(destinations)
        else:
            source_scope = sorted(d for d in scope_set if d != self.node_id)
        for destination in source_scope:
            chosen = None
            chosen_key = None
            for neighbor, advert in sorted(
                self.rib_in.adverts_for(destination).items()
            ):
                if self.node_id in advert.path:
                    continue
                key = self.policy.key(advert.cost, (self.node_id,) + advert.path)
                if chosen_key is None or key < chosen_key:
                    chosen_key = key
                    chosen = advert
            if chosen is None:
                # No loop-free candidate (or the destination vanished
                # from every neighbor table): no source route.
                self.source_routes.pop(destination, None)
                self.source_prices.pop(destination, None)
                continue
            path = (self.node_id,) + chosen.path
            transit_cost = chosen.cost
            node_costs = dict(chosen.node_costs)
            self.source_routes[destination] = RouteEntry(
                path=path, cost=transit_cost, node_costs=node_costs
            )
            prices: Dict[NodeId, Cost] = {}
            for k in path[1:-1]:
                best = INF
                for neighbor in self.rib_in.neighbors():
                    if neighbor == k:
                        continue
                    advert = self.rib_in.advert(neighbor, destination)
                    if advert is None:
                        continue
                    candidate = self._neighbor_avoiding_term(advert, k)
                    if candidate < best:
                        best = candidate
                c_k = node_costs.get(k, INF)
                prices[k] = c_k + best - transit_cost if best != INF else INF
            self.source_prices[destination] = prices
        return rows_changed

    # ------------------------------------------------------------------
    # Advertisement contents: the avoiding rows ride the price slot.
    # ------------------------------------------------------------------
    def _prices_for(self, destination: NodeId) -> Mapping[NodeId, Cost]:
        return dict(self.avoiding_rows.get(destination, {}))

    # ------------------------------------------------------------------
    def price(self, k: NodeId, destination: NodeId) -> Cost:
        return self.source_prices.get(destination, {}).get(k, 0.0)

    def restart(self) -> None:
        super().restart()
        self.avoiding_rows = {}
        self.source_routes = {}
        self.source_prices = {}


@dataclass
class EdgeCostResult:
    """Outcome of a distributed run on a per-neighbor-cost instance."""

    graph: EdgeCostGraph
    engine: SynchronousEngine
    stages: int

    def node(self, node_id: NodeId) -> EdgeCostPriceNode:
        return self.engine.nodes[node_id]

    def price(self, k: NodeId, source: NodeId, destination: NodeId) -> Cost:
        return self.node(source).price(k, destination)

    def path(self, source: NodeId, destination: NodeId) -> Optional[PathTuple]:
        entry = self.node(source).source_routes.get(destination)
        return None if entry is None else entry.path

    def cost(self, source: NodeId, destination: NodeId) -> Optional[Cost]:
        entry = self.node(source).source_routes.get(destination)
        return None if entry is None else entry.cost


def run_edgecost_mechanism(
    graph: EdgeCostGraph,
    max_stages: Optional[int] = None,
) -> EdgeCostResult:
    """Run the BGP-based mechanism on a per-neighbor-cost instance."""

    def factory(node_id: NodeId, _cost: Cost, policy: SelectionPolicy):
        return EdgeCostPriceNode(node_id, graph.forwarding_costs(node_id), policy)

    engine = SynchronousEngine(
        graph.topology, policy=LowestCostPolicy(), node_factory=factory
    )
    engine.initialize()
    report = engine.run(max_stages=max_stages)
    return EdgeCostResult(graph=graph, engine=engine, stages=report.stages)


@dataclass
class EdgeCostVerification:
    pairs_checked: int = 0
    prices_checked: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def verify_edgecost_result(
    result: EdgeCostResult,
    table: Optional[EdgeCostPriceTable] = None,
) -> EdgeCostVerification:
    """Compare a distributed run against the centralized extension."""
    table = table or compute_edgecost_price_table(result.graph)
    verification = EdgeCostVerification()
    for destination in result.graph.nodes:
        for source in result.graph.nodes:
            if source == destination:
                continue
            verification.pairs_checked += 1
            expected_path = table.path(source, destination)
            actual_path = result.path(source, destination)
            if actual_path != expected_path:
                verification.mismatches.append(
                    f"path ({source}->{destination}): {actual_path} != {expected_path}"
                )
                continue
            expected_row = table.row(source, destination)
            actual_row = result.node(source).source_prices.get(destination, {})
            for k in set(expected_row) | set(actual_row):
                verification.prices_checked += 1
                expected = expected_row.get(k)
                actual = actual_row.get(k)
                if (
                    expected is None
                    or actual is None
                    or math.isinf(actual)
                    or not math.isclose(actual, expected, rel_tol=1e-9, abs_tol=1e-9)
                ):
                    verification.mismatches.append(
                        f"price k={k} ({source}->{destination}): {actual} != {expected}"
                    )
    return verification
