"""The VCG mechanism under per-neighbor costs.

The Theorem 1 derivation only used (a) that routing minimizes the sum
of the agents' incurred costs and (b) that a node priced out entirely
carries nothing; both survive when a node's type is its *vector* of
per-neighbor costs.  The payment keeps the marginal form, with ``c_k``
evaluated toward ``k``'s next hop on the selected route:

    ``p^k_ij = c_k(next_k) + S_{-k}(i, j) - S(i, j)``

where ``S`` is the transit cost of the selected route and ``S_{-k}``
the best k-avoiding transit cost (computed on ``G - k``).

Strategyproofness (now against vector-valued lies) is exercised by
:func:`edgecost_utility` plus the deviation sweeps in the test suite
and experiment E13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.exceptions import MechanismError, NotBiconnectedError
from repro.extensions.edgecost.model import EdgeCostGraph
from repro.extensions.edgecost.routing import (
    EdgeCostRoutes,
    edgecost_avoiding_routes,
    edgecost_routes,
)
from repro.types import Cost, NodeId

PairKey = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class EdgeCostPriceTable:
    """All-pairs routes and prices for one per-neighbor-cost instance."""

    graph: EdgeCostGraph
    routes: Dict[NodeId, EdgeCostRoutes] = field(repr=False)
    rows: Dict[PairKey, Dict[NodeId, Cost]] = field(repr=False)

    def path(self, source: NodeId, destination: NodeId):
        return self.routes[destination].path(source)

    def cost(self, source: NodeId, destination: NodeId) -> Cost:
        return self.routes[destination].cost(source)

    def price(self, k: NodeId, source: NodeId, destination: NodeId) -> Cost:
        return self.rows.get((source, destination), {}).get(k, 0.0)

    def row(self, source: NodeId, destination: NodeId) -> Dict[NodeId, Cost]:
        return dict(self.rows.get((source, destination), {}))


def _avoiding_transit_cost(
    detour: EdgeCostRoutes, source: NodeId
) -> Optional[Cost]:
    """``S_{-k}(source)`` from a ``G - k`` routing state (None if cut)."""
    if not detour.has_route(source):
        return None
    return detour.cost(source)


def compute_edgecost_price_table(graph: EdgeCostGraph) -> EdgeCostPriceTable:
    """All-pairs routes and prices for a per-neighbor-cost instance."""
    routes: Dict[NodeId, EdgeCostRoutes] = {}
    rows: Dict[PairKey, Dict[NodeId, Cost]] = {}
    for destination in graph.nodes:
        state = edgecost_routes(graph, destination)
        routes[destination] = state
        transit_nodes = set()
        for source in graph.nodes:
            if source != destination and state.has_route(source):
                transit_nodes.update(state.path(source)[1:-1])
        detours = {
            k: edgecost_avoiding_routes(graph, destination, k)
            for k in transit_nodes
        }
        for source in graph.nodes:
            if source == destination:
                continue
            path = state.path(source)
            if len(path) == 2:
                rows[(source, destination)] = {}
                continue
            transit_cost = state.cost(source)
            row: Dict[NodeId, Cost] = {}
            for index in range(1, len(path) - 1):
                k = path[index]
                next_hop = path[index + 1]
                detour_cost = _avoiding_transit_cost(detours[k], source)
                if detour_cost is None:
                    raise NotBiconnectedError(
                        message=(
                            f"no {k}-avoiding path from {source} to "
                            f"{destination}; mechanism undefined"
                        )
                    )
                price = (
                    graph.forwarding_cost(k, next_hop)
                    + detour_cost
                    - transit_cost
                )
                if price < -1e-9:
                    raise MechanismError(
                        f"negative price {price} for k={k} on "
                        f"({source}, {destination})"
                    )
                row[k] = price
            rows[(source, destination)] = row
    return EdgeCostPriceTable(graph=graph, routes=routes, rows=rows)


def edgecost_utility(
    graph: EdgeCostGraph,
    k: NodeId,
    declared: Optional[Mapping[NodeId, Cost]],
    traffic: Mapping[PairKey, float],
    true_costs: Optional[Mapping[NodeId, Cost]] = None,
) -> Cost:
    """Agent ``k``'s utility when it declares the vector *declared*
    (``None`` = truthful) while its true vector is *true_costs*
    (defaulting to the instance's).

    Routing and prices respond to the declaration; incurred cost uses
    the truth, charged per forwarded packet toward the actual next hop.
    """
    truth = dict(true_costs) if true_costs is not None else graph.forwarding_costs(k)
    declared_graph = (
        graph if declared is None else graph.with_forwarding_costs(k, declared)
    )
    table = compute_edgecost_price_table(declared_graph)
    utility = 0.0
    for (source, destination), intensity in traffic.items():
        if not intensity:
            continue
        path = table.path(source, destination)
        if k not in path[1:-1]:
            continue
        next_hop = path[path.index(k) + 1]
        paid = table.price(k, source, destination)
        incurred = truth[next_hop]
        utility += intensity * (paid - incurred)
    return utility
