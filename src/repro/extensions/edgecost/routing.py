"""Lowest-cost routing under per-neighbor costs.

Per-neighbor costs break optimal substructure over *nodes*: the best
continuation from ``u`` depends on which neighbor ``u`` forwards to, so
a naive node-state Dijkstra selects non-optimal "LCPs".  The correct
formulation works on the edge metric

    ``w(u -> v) = c_u(v)``

and two per-destination quantities:

* ``C(a)`` -- the ``w``-distance from ``a`` to ``j`` *including* ``a``'s
  own first-edge cost.  ``C`` satisfies textbook suffix consistency, so
  the ``C``-shortest paths form a loop-free tree ``T_w(j)`` (this is
  what a node advertises and how it forwards transit traffic).
* ``S(i) = min over neighbors a of C(a)`` -- the paper-style *transit*
  cost of ``i``'s own traffic, since ``i`` itself forwards for free.
  ``i``'s selected route is the minimizing neighbor's tree path with
  ``i`` prepended (restricted to ``i``-free tree paths; the minimum is
  unaffected, because a tree path through ``i`` is dominated by ``i``'s
  own tree parent).

The returned structure carries both quantities plus per-path forwarding
cost snapshots, mirroring what the distributed protocol computes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.exceptions import UnreachableError
from repro.extensions.edgecost.model import EdgeCostGraph
from repro.routing.tiebreak import RouteKey, route_key
from repro.types import Cost, NodeId, PathTuple


@dataclass(frozen=True)
class EdgeCostRoutes:
    """Routing state toward one destination under per-neighbor costs."""

    destination: NodeId
    #: ``C(a)``: w-distance from a to j including a's first-edge cost.
    tree_costs: Dict[NodeId, Cost] = field(repr=False)
    #: the ``C``-shortest (tree) path of each node, node first.
    tree_paths: Dict[NodeId, PathTuple] = field(repr=False)
    #: ``S(i)``: the transit cost of i's own traffic.
    source_costs: Dict[NodeId, Cost] = field(repr=False)
    #: i's selected route for its own traffic (i first).
    source_paths: Dict[NodeId, PathTuple] = field(repr=False)

    def tree_cost(self, node: NodeId) -> Cost:
        try:
            return self.tree_costs[node]
        except KeyError:
            raise UnreachableError(node, self.destination) from None

    def tree_path(self, node: NodeId) -> PathTuple:
        try:
            return self.tree_paths[node]
        except KeyError:
            raise UnreachableError(node, self.destination) from None

    def cost(self, source: NodeId) -> Cost:
        """``S(source)``: transit cost of the selected source route."""
        if source == self.destination:
            return 0.0
        try:
            return self.source_costs[source]
        except KeyError:
            raise UnreachableError(source, self.destination) from None

    def path(self, source: NodeId) -> PathTuple:
        if source == self.destination:
            return (source,)
        try:
            return self.source_paths[source]
        except KeyError:
            raise UnreachableError(source, self.destination) from None

    def has_route(self, source: NodeId) -> bool:
        return source == self.destination or source in self.source_paths


def edgecost_routes(graph: EdgeCostGraph, destination: NodeId) -> EdgeCostRoutes:
    """Compute ``C``, ``T_w(j)`` and the source routes for one destination."""
    if destination not in graph.nodes:
        raise UnreachableError(destination, destination)

    # --- the C tree: standard edge-weighted Dijkstra from j -----------
    # Extending (u, ..., j) to (v, u, ..., j) adds w(v -> u) = c_v(u):
    # the new head pays its own first edge.
    best: Dict[NodeId, RouteKey] = {destination: route_key(0.0, (destination,))}
    finalized: Dict[NodeId, RouteKey] = {}
    heap = [(best[destination], destination)]
    while heap:
        key, node = heapq.heappop(heap)
        if node in finalized:
            continue
        if key != best.get(node):
            continue
        finalized[node] = key
        cost, _hops, path = key
        for neighbor in graph.neighbors(node):
            if neighbor in finalized or neighbor in path:
                continue
            candidate = route_key(
                cost + graph.forwarding_cost(neighbor, node),
                (neighbor,) + path,
            )
            incumbent = best.get(neighbor)
            if incumbent is None or candidate < incumbent:
                best[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))

    tree_costs: Dict[NodeId, Cost] = {}
    tree_paths: Dict[NodeId, PathTuple] = {}
    for node, (cost, _hops, path) in finalized.items():
        if node == destination:
            continue
        tree_costs[node] = cost
        tree_paths[node] = path

    # --- source routes: best neighbor by (C, hops, extended path) -----
    source_costs: Dict[NodeId, Cost] = {}
    source_paths: Dict[NodeId, PathTuple] = {}
    for node in graph.nodes:
        if node == destination:
            continue
        best_key: Optional[RouteKey] = None
        for neighbor in graph.neighbors(node):
            if neighbor == destination:
                candidate = route_key(0.0, (node, destination))
            else:
                if neighbor not in tree_paths:
                    continue
                tree = tree_paths[neighbor]
                if node in tree:
                    continue  # dominated (see module docstring)
                candidate = route_key(tree_costs[neighbor], (node,) + tree)
            if best_key is None or candidate < best_key:
                best_key = candidate
        if best_key is not None:
            source_costs[node] = best_key[0]
            source_paths[node] = best_key[2]

    return EdgeCostRoutes(
        destination=destination,
        tree_costs=tree_costs,
        tree_paths=tree_paths,
        source_costs=source_costs,
        source_paths=source_paths,
    )


def edgecost_avoiding_routes(
    graph: EdgeCostGraph, destination: NodeId, k: NodeId
) -> EdgeCostRoutes:
    """Routing state toward *destination* in ``G - k``."""
    if k == destination:
        raise UnreachableError(destination, destination, avoiding=k)
    return edgecost_routes(graph.without_node(k), destination)
