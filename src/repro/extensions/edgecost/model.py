"""The per-neighbor cost model.

An :class:`EdgeCostGraph` is an AS graph whose node ``k`` declares a
separate per-packet cost ``c_k(v)`` for each neighbor ``v`` it may
forward to.  The base model is the special case where all of a node's
per-neighbor costs coincide; :meth:`EdgeCostGraph.from_uniform` builds
that embedding, which the tests use to check the extension degenerates
to the Theorem 1 mechanism exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graphs.asgraph import ASGraph
from repro.types import Cost, NodeId, validate_cost


class EdgeCostGraph:
    """An AS graph with per-neighbor forwarding costs.

    Parameters
    ----------
    edges:
        Undirected links.
    forwarding_costs:
        ``node -> {neighbor -> cost}``.  Every node must price every
        one of its neighbors (it could be asked to forward to any).
    """

    __slots__ = ("_topology", "_costs")

    def __init__(
        self,
        edges: Iterable[Tuple[NodeId, NodeId]],
        forwarding_costs: Mapping[NodeId, Mapping[NodeId, Cost]],
    ) -> None:
        node_ids = sorted(forwarding_costs)
        self._topology = ASGraph(
            nodes=[(node, 0.0) for node in node_ids], edges=list(edges)
        )
        self._costs: Dict[NodeId, Dict[NodeId, Cost]] = {}
        for node in node_ids:
            declared = dict(forwarding_costs[node])
            neighbors = set(self._topology.neighbors(node))
            if set(declared) != neighbors:
                raise GraphError(
                    f"node {node} must price exactly its neighbors "
                    f"{sorted(neighbors)}, got {sorted(declared)}"
                )
            self._costs[node] = {
                neighbor: validate_cost(
                    cost, what=f"cost of node {node} toward {neighbor}"
                )
                for neighbor, cost in declared.items()
            }

    # ------------------------------------------------------------------
    @classmethod
    def from_uniform(cls, graph: ASGraph) -> "EdgeCostGraph":
        """Embed a base (uniform-cost) instance: ``c_k(v) = c_k``."""
        forwarding = {
            node: {neighbor: graph.cost(node) for neighbor in graph.neighbors(node)}
            for node in graph.nodes
        }
        return cls(edges=graph.edges, forwarding_costs=forwarding)

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        return self._topology.nodes

    @property
    def edges(self):
        return self._topology.edges

    @property
    def num_nodes(self) -> int:
        return self._topology.num_nodes

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        return self._topology.neighbors(node)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return self._topology.has_edge(u, v)

    @property
    def topology(self) -> ASGraph:
        """The underlying cost-free topology (for biconnectivity etc.)."""
        return self._topology

    def forwarding_cost(self, node: NodeId, toward: NodeId) -> Cost:
        """``c_node(toward)``: the declared cost of *node* forwarding a
        packet to its neighbor *toward*."""
        try:
            return self._costs[node][toward]
        except KeyError:
            raise GraphError(
                f"node {node} has no forwarding cost toward {toward}"
            ) from None

    def forwarding_costs(self, node: NodeId) -> Dict[NodeId, Cost]:
        return dict(self._costs[node])

    def path_cost(self, path: Sequence[NodeId]) -> Cost:
        """Transit cost of *path*: each intermediate node pays its cost
        toward the next node on the path (destination-first
        accumulation, like the base model)."""
        if len(path) < 2:
            raise GraphError(f"path must have at least two nodes, got {list(path)}")
        for u, v in zip(path, path[1:]):
            if not self.has_edge(u, v):
                raise GraphError(f"path uses missing link ({u}, {v})")
        total = 0.0
        for index in range(len(path) - 2, 0, -1):
            total += self.forwarding_cost(path[index], path[index + 1])
        return total

    # ------------------------------------------------------------------
    def with_forwarding_costs(
        self, node: NodeId, costs: Mapping[NodeId, Cost]
    ) -> "EdgeCostGraph":
        """A copy with *node* re-declaring its whole cost vector (the
        unilateral-deviation construction; a node's type is the vector)."""
        if node not in self._costs:
            raise GraphError(f"unknown node {node}")
        forwarding = {n: dict(c) for n, c in self._costs.items()}
        forwarding[node] = dict(costs)
        return EdgeCostGraph(edges=self.edges, forwarding_costs=forwarding)

    def without_node(self, node: NodeId) -> "EdgeCostGraph":
        """A copy with *node* removed (k-avoiding computations)."""
        if node not in self._costs:
            raise GraphError(f"unknown node {node}")
        edges = [(u, v) for u, v in self.edges if node not in (u, v)]
        forwarding = {
            n: {v: c for v, c in costs.items() if v != node}
            for n, costs in self._costs.items()
            if n != node
        }
        return EdgeCostGraph(edges=edges, forwarding_costs=forwarding)

    def __repr__(self) -> str:
        return f"EdgeCostGraph(n={self.num_nodes}, m={len(self.edges)})"
