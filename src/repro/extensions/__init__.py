"""Extensions beyond the paper's core model.

The paper sketches, but does not develop, two generalizations; this
package implements the first and probes the second:

* :mod:`repro.extensions.edgecost` -- Section 3's remark: "we could
  have a different cost depending on which neighbor k sends the packet
  to, in which case we would have a cost associated with each edge, as
  in the cost model of [12, 16].  (The strategic agents would still be
  the nodes, and hence the VCG mechanism we describe here would remain
  strategyproof.)"  Implemented end to end: model, routing, centralized
  mechanism, and the BGP-based distributed computation.
* :mod:`repro.extensions.capacity` -- Section 7's open problem:
  "augment the network model with link or node capacities in order to
  tackle the problem of routing in congested networks."  Implemented as
  an analysis layer: capacity-annotated instances, utilization under
  LCP routing, and a demonstration that the uncapacitated VCG prices
  ignore congestion (the reason the paper calls it open).
"""

from repro.extensions.edgecost.model import EdgeCostGraph
from repro.extensions.edgecost.mechanism import compute_edgecost_price_table
from repro.extensions.edgecost.distributed import run_edgecost_mechanism
from repro.extensions.capacity import (
    CongestionReport,
    congestion_report,
    greedy_decongest,
)

__all__ = [
    "EdgeCostGraph",
    "compute_edgecost_price_table",
    "run_edgecost_mechanism",
    "CongestionReport",
    "congestion_report",
    "greedy_decongest",
]
