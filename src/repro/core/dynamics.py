"""Reconvergence under network dynamics (experiment E10).

The paper's model restarts convergence whenever a route changes.  This
module drives a running FPSS network through a scripted event sequence;
after every event it runs the engine back to quiescence, verifies the
result against the centralized mechanism for the *mutated* graph, and
records the reconvergence stages next to the new instance's
``max(d, d')`` bound.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

import repro.obs as obs_mod
from repro.bgp.delays import DelayModel
from repro.bgp.engine import SynchronousEngine
from repro.bgp.events import CostChange, LinkFailure, LinkRecovery, NetworkEvent
from repro.bgp.metrics import TimedReport
from repro.bgp.policy import LowestCostPolicy, SelectionPolicy
from repro.bgp.timed import MRAIConfig, TimedEngine
from repro.core.convergence import ConvergenceBound, convergence_bound
from repro.core.price_node import PriceComputingNode, UpdateMode
from repro.core.protocol import (
    DistributedPriceResult,
    VerificationReport,
    verify_against_centralized,
)
from repro.exceptions import ExperimentError
from repro.graphs.asgraph import ASGraph
from repro.graphs.biconnectivity import is_biconnected
from repro.types import Cost, NodeId

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.routing.engines import Engine, EngineSpec


def apply_event_to_graph(graph: ASGraph, event: NetworkEvent) -> ASGraph:
    """The graph-side twin of an engine event, for the reference model."""
    if isinstance(event, LinkFailure):
        return graph.without_edge(event.u, event.v)
    if isinstance(event, LinkRecovery):
        return graph.with_edge(event.u, event.v)
    if isinstance(event, CostChange):
        return graph.with_cost(event.node, event.new_cost)
    raise ExperimentError(f"unknown event type {type(event).__name__}")


@dataclass
class EpochResult:
    """The outcome of one convergence epoch (initial or post-event).

    A network event triggers the Sect. 6 restart: the price-computing
    network forgets its learned state and reconverges from scratch on
    the mutated topology, so ``stages`` (the engine's reconvergence
    count from the event) is itself a from-scratch measurement and must
    respect the mutated instance's ``max(d, d')``.  ``cold_stages``
    cross-checks with an entirely fresh engine on the mutated graph.
    """

    description: str
    graph: ASGraph
    stages: int
    cold_stages: int
    bound: ConvergenceBound
    verification: VerificationReport

    @property
    def within_bound(self) -> bool:
        """Reconvergence respects Theorem 2 on the mutated instance."""
        return (
            self.stages <= self.bound.stages
            and self.cold_stages <= self.bound.stages
        )

    @property
    def ok(self) -> bool:
        return self.verification.ok


@dataclass
class DynamicsRun:
    """A full scripted run: initial convergence plus one epoch per event."""

    epochs: List[EpochResult] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return all(epoch.ok for epoch in self.epochs)

    @property
    def all_within_bound(self) -> bool:
        return all(epoch.within_bound for epoch in self.epochs)


def dynamic_scenario(
    graph: ASGraph,
    events: Sequence[NetworkEvent],
    mode: UpdateMode = UpdateMode.MONOTONE,
    policy: Optional[SelectionPolicy] = None,
    max_stages: Optional[int] = None,
    *,
    engine: Optional["EngineSpec"] = None,
    protocol: str = "delta",
    obs: Optional[obs_mod.Obs] = None,
) -> DynamicsRun:
    """Converge, then apply each event and reconverge, verifying every
    epoch against the centralized mechanism on the mutated graph.

    Every intermediate graph must stay biconnected (otherwise the
    mechanism itself is undefined); a violating script raises
    :class:`ExperimentError` before the offending event is applied.

    *engine* selects the route/price backend used for the per-epoch
    centralized verification (name or instance; default: the reference
    sweep).  It is resolved **once** and the same instance is reused
    across every epoch -- this is what lets the stateful ``incremental``
    engine carry its tree caches from one event to the next instead of
    recomputing the mutated instance from scratch.

    *protocol* selects the BGP transport of the distributed network
    under test: ``delta`` (incremental row exchanges, the default) or
    ``full`` (literal Sect. 5 full tables); results are bit-identical
    either way.
    """
    policy = policy or LowestCostPolicy()

    def factory(node_id: NodeId, cost: Cost, pol: SelectionPolicy) -> PriceComputingNode:
        return PriceComputingNode(node_id, cost, pol, mode=mode)

    price_engine: Optional["Engine"] = None
    if engine is not None:
        from repro.routing.engines import resolve_engine

        price_engine = resolve_engine(engine)

    bgp = SynchronousEngine(
        graph,
        policy=policy,
        node_factory=factory,
        incremental=protocol != "full",
        obs=obs,
    )
    bgp.initialize()
    run = DynamicsRun()
    current = graph

    report = bgp.run(max_stages=max_stages)
    run.epochs.append(
        _epoch("initial convergence", current, bgp, report, mode, price_engine)
    )

    for event in events:
        mutated = apply_event_to_graph(current, event)
        if not is_biconnected(mutated):
            raise ExperimentError(
                f"event '{event.describe()}' breaks biconnectivity; "
                "the mechanism is undefined on the resulting graph"
            )
        event.apply(bgp)
        current = mutated
        report = bgp.run(max_stages=max_stages)
        run.epochs.append(
            _epoch(event.describe(), current, bgp, report, mode, price_engine)
        )
    return run


@dataclass
class TimedScenarioResult:
    """The outcome of a timed scripted scenario.

    Unlike the staged :class:`DynamicsRun`, events fire *inside* one
    continuous timed run -- possibly while UPDATEs are still in flight
    (those are lost with their session) -- so there is one final
    verification against the centralized mechanism on the fully mutated
    graph rather than one per epoch.
    """

    graph: ASGraph  # the final mutated topology
    engine: TimedEngine
    report: TimedReport
    verification: VerificationReport
    events_applied: int

    @property
    def ok(self) -> bool:
        return self.report.converged and self.verification.ok


def timed_scenario(
    graph: ASGraph,
    events: Sequence[Tuple[float, NetworkEvent]],
    mode: UpdateMode = UpdateMode.MONOTONE,
    policy: Optional[SelectionPolicy] = None,
    *,
    seed: int = 0,
    delay: Union[str, DelayModel, None] = None,
    mrai: Union[dict, MRAIConfig, None] = None,
    max_events: Optional[int] = None,
    obs: Optional[obs_mod.Obs] = None,
) -> TimedScenarioResult:
    """Run the timed substrate with network events at virtual times.

    *events* is a sequence of ``(when, event)`` pairs; they are applied
    at their virtual timestamps, interleaved with whatever protocol
    traffic is then in flight.  Every intermediate graph (events taken
    in timestamp order) must stay biconnected, else the mechanism is
    undefined and :class:`ExperimentError` is raised before anything
    runs.  The converged final state is verified against the
    centralized mechanism on the final mutated graph.
    """
    policy = policy or LowestCostPolicy()
    ordered = sorted(enumerate(events), key=lambda item: (item[1][0], item[0]))
    current = graph
    for _, (when, event) in ordered:
        current = apply_event_to_graph(current, event)
        if not is_biconnected(current):
            raise ExperimentError(
                f"event '{event.describe()}' breaks biconnectivity; "
                "the mechanism is undefined on the resulting graph"
            )

    def factory(node_id: NodeId, cost: Cost, pol: SelectionPolicy) -> PriceComputingNode:
        return PriceComputingNode(node_id, cost, pol, mode=mode)

    engine = TimedEngine(
        graph,
        policy=policy,
        node_factory=factory,
        seed=seed,
        delay=delay,
        mrai=mrai,
        obs=obs,
    )
    engine.initialize()
    for _, (when, event) in ordered:
        engine.schedule_event(when, event)
    report = engine.run(max_events=max_events)
    result = DistributedPriceResult(
        graph=current, engine=engine, report=report, mode=mode
    )
    verification = verify_against_centralized(result)
    return TimedScenarioResult(
        graph=current,
        engine=engine,
        report=report,
        verification=verification,
        events_applied=len(events),
    )


def _epoch(
    description: str,
    graph: ASGraph,
    engine: SynchronousEngine,
    report,
    mode: UpdateMode,
    price_engine: Optional["Engine"] = None,
) -> EpochResult:
    result = DistributedPriceResult(
        graph=graph, engine=engine, report=report, mode=mode
    )
    # The centralized reference for the *mutated* graph: a stateful
    # price engine (incremental) updates its cached trees here instead
    # of recomputing all of them.
    table = price_engine.price_table(graph) if price_engine is not None else None
    verification = verify_against_centralized(result, table=table)
    # Cold-start reference run on the mutated graph: this is what
    # Theorem 2's bound is actually about.
    from repro.core.protocol import distributed_mechanism

    cold = distributed_mechanism(graph, mode=mode, policy=engine.policy)
    return EpochResult(
        description=description,
        graph=graph,
        stages=report.stages,
        cold_stages=cold.stages,
        bound=convergence_bound(graph),
        verification=verification,
    )


def _warn_renamed(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; call repro.api.run(...) or "
        f"repro.core.dynamics.{new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_dynamic_scenario(*args, **kwargs) -> DynamicsRun:
    """Deprecated alias for :func:`dynamic_scenario`."""
    _warn_renamed("run_dynamic_scenario", "dynamic_scenario")
    return dynamic_scenario(*args, **kwargs)


def run_timed_scenario(*args, **kwargs) -> TimedScenarioResult:
    """Deprecated alias for :func:`timed_scenario`."""
    _warn_renamed("run_timed_scenario", "timed_scenario")
    return timed_scenario(*args, **kwargs)
