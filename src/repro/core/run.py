"""The unified entry point: one ``run()`` for every protocol flavor.

Historically the library grew four parallel runners --
``run_distributed_mechanism`` (staged/asynchronous, no events),
``run_dynamic_scenario`` (staged + scripted events),
``run_timed_mechanism`` (discrete-event substrate, no events), and
``run_timed_scenario`` (discrete-event + scheduled events).  They are
four cells of one 2x2 grid (substrate x events), so :func:`run`
dispatches on exactly those two axes:

* ``protocol`` picks the substrate: ``"delta"`` (staged engine,
  incremental row transport -- the default), ``"full"`` (staged engine,
  literal Sect. 5 full-table transport), or ``"timed"`` (the
  discrete-event simulator of :mod:`repro.bgp.timed`).
* ``events`` picks static vs dynamic: ``None`` runs one convergence to
  quiescence; a sequence of :class:`~repro.bgp.events.NetworkEvent`
  (staged) or ``(virtual_time, event)`` pairs (timed) drives the
  Sect. 6 dynamics.

The return type is the matching report of the legacy entry point --
:class:`~repro.core.protocol.DistributedPriceResult`,
:class:`~repro.core.dynamics.DynamicsRun`, or
:class:`~repro.core.dynamics.TimedScenarioResult` -- byte-for-byte
identical to what the old name would have produced, which is what
``tests/test_api_run.py`` asserts.

Keyword knobs that only exist on one substrate are validated here, so a
meaningless combination (``mrai=`` on the staged engine, ``engine=`` on
a static run) fails fast with :class:`MechanismError` instead of being
silently dropped.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

import repro.obs as obs_mod
from repro.bgp.delays import DelayModel
from repro.bgp.policy import SelectionPolicy
from repro.bgp.timed import MRAIConfig
from repro.core.dynamics import (
    DynamicsRun,
    TimedScenarioResult,
    dynamic_scenario,
    timed_scenario,
)
from repro.core.price_node import UpdateMode
from repro.core.protocol import (
    DistributedPriceResult,
    distributed_mechanism,
    timed_mechanism,
)
from repro.devtools import sanitize as sanitize_checks
from repro.exceptions import MechanismError
from repro.graphs.asgraph import ASGraph

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.routing.engines import EngineSpec

__all__ = ["run", "RunResult"]

#: Everything :func:`run` can return, by dispatch cell.
RunResult = Union[DistributedPriceResult, DynamicsRun, TimedScenarioResult]

_PROTOCOLS = ("delta", "full", "timed")


def _reject(condition: bool, message: str) -> None:
    if condition:
        raise MechanismError(message)


def run(
    graph: ASGraph,
    events: Optional[Sequence] = None,
    *,
    protocol: str = "delta",
    engine: Optional["EngineSpec"] = None,
    delay: Union[str, DelayModel, None] = None,
    mrai: Union[dict, MRAIConfig, None] = None,
    sanitize: Optional[bool] = None,
    obs: Optional[obs_mod.Obs] = None,
    mode: UpdateMode = UpdateMode.MONOTONE,
    policy: Optional[SelectionPolicy] = None,
    seed: int = 0,
    asynchronous: bool = False,
    max_stages: Optional[int] = None,
    max_events: Optional[int] = None,
) -> RunResult:
    """Run the FPSS mechanism: any substrate, static or dynamic.

    Dispatch is on ``(protocol, events is None)``:

    ==========  ===========  ==========================================
    protocol    events       behavior (and return type)
    ==========  ===========  ==========================================
    delta/full  ``None``     staged convergence to quiescence
                             (:class:`DistributedPriceResult`)
    delta/full  sequence     converge, apply each event, reconverge and
                             verify per epoch (:class:`DynamicsRun`)
    timed       ``None``     discrete-event run under *delay*/*mrai*
                             (:class:`DistributedPriceResult`)
    timed       pairs        events fire at virtual timestamps inside
                             one run (:class:`TimedScenarioResult`)
    ==========  ===========  ==========================================

    *delay* accepts a :class:`DelayModel` or a spec string
    (``"uniform:0.1,1.0"``); *mrai* an :class:`MRAIConfig` or a keyword
    dict -- both timed-only.  *engine* (dynamic staged runs only) picks
    the per-epoch verification backend, e.g. ``"incremental"``.
    *sanitize* overrides the global sanitizer switch for this run:
    ``True`` forces the precondition/postcondition checks on, ``False``
    off, ``None`` (default) leaves the ambient setting.  *asynchronous*
    (static staged runs only) uses the seeded asynchronous engine.
    """
    if protocol not in _PROTOCOLS:
        raise MechanismError(
            f"unknown protocol {protocol!r}; expected one of {_PROTOCOLS}"
        )
    timed = protocol == "timed"
    _reject(
        not timed and delay is not None,
        "delay= is a timed-substrate knob; pass protocol='timed'",
    )
    _reject(
        not timed and mrai is not None,
        "mrai= is a timed-substrate knob; pass protocol='timed'",
    )
    _reject(
        not timed and max_events is not None,
        "max_events= bounds the timed event loop; pass protocol='timed' "
        "(staged runs are bounded by max_stages=)",
    )
    _reject(
        timed and max_stages is not None,
        "max_stages= bounds the staged engine; the timed substrate is "
        "bounded by max_events=",
    )
    _reject(
        timed and asynchronous,
        "asynchronous= selects the staged asynchronous engine; the timed "
        "substrate is always event-driven",
    )
    _reject(
        asynchronous and events is not None,
        "asynchronous= applies to static runs only; scripted scenarios "
        "reconverge on the staged synchronous engine",
    )
    _reject(
        engine is not None and (timed or events is None),
        "engine= selects the per-epoch verification backend of a staged "
        "dynamic scenario; it needs events= and a non-timed protocol",
    )

    def dispatch() -> RunResult:
        if timed:
            if events is None:
                return timed_mechanism(
                    graph,
                    mode,
                    policy,
                    seed=seed,
                    delay=delay,
                    mrai=mrai,
                    max_events=max_events,
                    obs=obs,
                )
            return timed_scenario(
                graph,
                events,
                mode,
                policy,
                seed=seed,
                delay=delay,
                mrai=mrai,
                max_events=max_events,
                obs=obs,
            )
        if events is None:
            return distributed_mechanism(
                graph,
                mode,
                policy,
                asynchronous=asynchronous,
                seed=seed,
                max_stages=max_stages,
                obs=obs,
                protocol=protocol,
            )
        return dynamic_scenario(
            graph,
            events,
            mode,
            policy,
            max_stages,
            engine=engine,
            protocol=protocol,
            obs=obs,
        )

    if sanitize is None:
        return dispatch()
    with sanitize_checks.sanitized(bool(sanitize)):
        return dispatch()
