"""The paper's primary contribution: BGP-based VCG price computation.

Section 6 extends the path-vector exchange so that every node ``i``
learns, for every destination ``j``, the price ``p^k_ij`` of every
transit node ``k`` on its selected path -- with no new message types, a
constant-factor state increase, and convergence within ``max(d, d')``
stages (Theorem 2).

* :mod:`repro.core.cases` -- the four neighbor cases and update
  formulas, inequalities (2)-(5), as pure functions.
* :mod:`repro.core.price_node` -- the price-computing BGP node
  (Figure 3's algorithm), in both the paper-faithful *monotone* mode
  and the *recompute* fixpoint mode.
* :mod:`repro.core.run` -- the unified :func:`~repro.core.run.run`
  entry point dispatching every substrate (staged, timed) and both
  static and scripted-event runs.
* :mod:`repro.core.protocol` -- the underlying one-call runners that
  execute the protocol and (optionally) check the result against the
  centralized Theorem 1 prices.
* :mod:`repro.core.convergence` -- the ``d`` / ``d'`` bound machinery
  for experiment E5.
* :mod:`repro.core.dynamics` -- scripted-event reconvergence (E10).
"""

from repro.core.cases import NeighborRelation, classify_neighbor, price_candidates
from repro.core.price_node import PriceComputingNode, UpdateMode
from repro.core.protocol import (
    DistributedPriceResult,
    distributed_mechanism,
    run_distributed_mechanism,
    timed_mechanism,
    verify_against_centralized,
)
from repro.core.run import run
from repro.core.convergence import ConvergenceBound, convergence_bound

__all__ = [
    "NeighborRelation",
    "classify_neighbor",
    "price_candidates",
    "PriceComputingNode",
    "UpdateMode",
    "DistributedPriceResult",
    "run",
    "distributed_mechanism",
    "timed_mechanism",
    "run_distributed_mechanism",
    "verify_against_centralized",
    "ConvergenceBound",
    "convergence_bound",
]
