"""The four neighbor cases of Section 6 as pure functions.

For node ``i`` computing prices toward destination ``j``, every
neighbor ``a`` contributes candidate values for ``p^k_ij`` according to
its relation to ``i`` in the route tree ``T(j)``:

=====  ==============================  =====================================
case   relation                        candidate for ``p^k_ij``
=====  ==============================  =====================================
(i)    ``a`` is ``i``'s parent          ``p^k_aj``                  (Eq. 2)
(ii)   ``a`` is ``i``'s child           ``p^k_aj + c_i + c_a``      (Eq. 3)
(iii)  neither, ``k`` on ``P(a, j)``    ``p^k_aj + c_a + c(a,j) - c(i,j)``
                                                                    (Eq. 4)
(iv)   neither, ``k`` not on ``P(a,j)`` ``c_k + c_a + c(a,j) - c(i,j)``
                                                                    (Eq. 5)
=====  ==============================  =====================================

Each candidate is an upper bound on the true price in *every* protocol
state (each corresponds to a concrete k-avoiding walk from ``i``), and
by Lemma 1 the bound is tight for the neighbor that begins the true
lowest-cost k-avoiding path -- so the minimum over neighbors converges
to the exact price.

Exclusions: a neighbor never contributes a candidate for ``k`` equal to
itself (the constructions route the packet through ``a``), and the
destination ``j`` as a neighbor contributes the *direct-link* detour
``c_k + 0 - c(i,j)`` (appending the link ``i-j`` costs nothing in
transit because ``j`` is the endpoint).

The functions here are deliberately free of node/engine state so the
unit tests can exercise every case in isolation.
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Optional

from repro.bgp.messages import RouteAdvertisement
from repro.types import Cost, NodeId, PathTuple

INF = float("inf")


class NeighborRelation(enum.Enum):
    """Where a neighbor sits relative to ``i`` in ``T(j)``."""

    PARENT = "parent"
    CHILD = "child"
    OTHER = "other"


def classify_neighbor(
    self_id: NodeId,
    my_path: PathTuple,
    neighbor: NodeId,
    advert: Optional[RouteAdvertisement],
) -> NeighborRelation:
    """Classify *neighbor* using only locally available information.

    ``i`` can infer the relation from the routing tables it has received
    (Sect. 6.1): the parent is ``i``'s own next hop; a child is a
    neighbor whose advertised path has ``i`` as *its* next hop.
    """
    if len(my_path) >= 2 and my_path[1] == neighbor:
        return NeighborRelation.PARENT
    if advert is not None and len(advert.path) >= 2 and advert.path[1] == self_id:
        return NeighborRelation.CHILD
    return NeighborRelation.OTHER


def price_candidates(
    self_id: NodeId,
    self_cost: Cost,
    my_path: PathTuple,
    my_cost: Cost,
    my_node_costs: Mapping[NodeId, Cost],
    neighbor: NodeId,
    advert: Optional[RouteAdvertisement],
    literal_child_formula: bool = False,
) -> Dict[NodeId, Cost]:
    """Candidate prices ``k -> value`` contributed by one neighbor.

    Parameters mirror the information genuinely available at ``i``:
    its own selected route (path, cost, per-node cost snapshot) and the
    last advertisement stored from the neighbor.  Only transit nodes of
    ``i``'s own path get candidates; missing/unusable combinations are
    simply absent from the result (the caller takes a minimum).

    *literal_child_formula* evaluates Eq. 3 exactly as printed
    (``p^k_aj + c_i + c_a``) for child neighbors instead of the
    advert-consistent rewriting.  The two coincide at convergence and
    on synchronized static runs, but the literal form silently assumes
    the child's advertised cost reflects ``i``'s *current* cost; under
    asynchrony a stale child advertisement can then push a candidate
    below the true price, which the monotone minimum never recovers
    from.  The flag exists for the E15 ablation that demonstrates
    exactly that failure; production callers leave it off.
    """
    candidates: Dict[NodeId, Cost] = {}
    transit = my_path[1:-1]
    if not transit:
        return candidates
    destination = my_path[-1]

    if advert is None:
        # Only the destination itself never advertises anything beyond
        # its self-route; with no stored advert there is no information.
        return candidates

    relation = classify_neighbor(self_id, my_path, neighbor, advert)
    neighbor_cost = advert.sender_cost

    if relation is NeighborRelation.PARENT:
        # Case (i): my path continues through the parent; its price for
        # any shared transit node k (all of mine except the parent
        # itself) transfers unchanged.  My route was selected from this
        # very advertisement, so the Eq. 2 premise c(i,j) = c(a,j) + c_a
        # holds exactly (bit for bit).
        for k in transit:
            if k == neighbor:
                continue
            price = advert.prices.get(k)
            if price is not None:
                candidates[k] = price
        return candidates

    if literal_child_formula and relation is NeighborRelation.CHILD:
        # Eq. 3 exactly as printed -- correct at convergence, unsound
        # against stale advertisements (see docstring).
        for k in transit:
            if k == neighbor:
                continue
            price = advert.prices.get(k)
            if price is not None:
                candidates[k] = price + self_cost + neighbor_cost
        return candidates

    # All other neighbors -- children (case ii) and unrelated nodes
    # (cases iii and iv) -- are handled by one *advert-consistent* pair
    # of formulas.  Algebraically, Eq. 3 is Eq. 4 with the child premise
    # c(a,j) = c_i + c(i,j) substituted in, so evaluating Eq. 4 directly
    # gives the same value at convergence; crucially it only combines
    # quantities snapshotted together in the advert (p^k_aj with c(a,j))
    # plus my own current c(i,j), which keeps every candidate an upper
    # bound on the true price even when the advert is stale.  (The
    # original Eq. 3 form `p^k_aj + c_i + c_a` silently assumes the
    # child's advertised cost reflects my *current* cost; under
    # asynchrony or network dynamics that assumption fails and the
    # candidate could drop below the true price, which a monotone
    # minimum never recovers from.)
    #
    # The detour through `a` costs  c_a + c(a, j)  in transit -- except
    # when the neighbor *is* the destination, where the direct link
    # costs 0.
    if neighbor == destination:
        detour_base = 0.0
        advert_path = (destination,)
    else:
        detour_base = advert.cost + neighbor_cost
        advert_path = advert.path

    for k in transit:
        if k == neighbor:
            continue  # the detour routes through a; useless for k == a
        if k in advert_path:
            # Cases (ii)/(iii): k also sits on the neighbor's path;
            # shift its price by the detour/LCP cost difference.
            price = advert.prices.get(k)
            if price is not None:
                candidates[k] = price + neighbor_cost + advert.cost - my_cost
        else:
            # Case (iv): the neighbor's own LCP avoids k already.
            c_k = my_node_costs.get(k)
            if c_k is not None:
                candidates[k] = c_k + detour_base - my_cost
    return candidates
