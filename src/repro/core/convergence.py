"""The ``max(d, d')`` convergence bound of Theorem 2.

``d``  -- maximum AS hops over all selected LCPs;
``d'`` -- maximum AS hops over all lowest-cost k-avoiding paths
          ``P_{-k}(c; i, j)`` for transit ``k`` on selected LCPs.

Lemma 2 shows node ``i`` knows its correct routes and prices after
``d_i = max(|P(c; i, j)|, |P_{-k}(c; i, j)|)`` stages; Corollary 1
globalizes this to ``max(d, d')``.  Experiment E5 measures the actual
stage counts of the engine against :func:`convergence_bound`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.metrics import ConvergenceReport
from repro.graphs.asgraph import ASGraph
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.avoiding import max_avoiding_hops


@dataclass(frozen=True)
class ConvergenceBound:
    """The instance-specific quantities of Theorem 2."""

    d: int
    d_prime: int

    @property
    def stages(self) -> int:
        """The bound itself: ``max(d, d')``."""
        return max(self.d, self.d_prime)

    def satisfied_by(self, report: ConvergenceReport, slack: int = 0) -> bool:
        """Whether a measured run respected the bound (plus *slack*
        stages of tolerance; the reproduction passes with slack 0)."""
        return report.stages <= self.stages + slack


def convergence_bound(graph: ASGraph) -> ConvergenceBound:
    """Compute ``d`` and ``d'`` for *graph* with the canonical routing."""
    routes = all_pairs_lcp(graph)
    return ConvergenceBound(d=routes.max_hops(), d_prime=max_avoiding_hops(graph))
