"""One-call runners for the distributed mechanism.

:func:`distributed_mechanism` wires price-computing nodes into the
synchronous (or asynchronous) engine, runs to quiescence, and packages
the network-wide result; :func:`timed_mechanism` does the same on the
discrete-event timed substrate.  Both are normally reached through the
unified dispatcher :func:`repro.core.run.run`.
:func:`verify_against_centralized` compares every route and every price
against the centralized Theorem 1 reference -- the end-to-end
correctness statement of the reproduction.

The historical ``run_*`` names remain as thin deprecated wrappers.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import repro.obs as obs_mod
from repro.bgp.delays import DelayModel
from repro.bgp.engine import AsynchronousEngine, SynchronousEngine
from repro.bgp.timed import MRAIConfig, TimedEngine
from repro.devtools import sanitize
from repro.bgp.metrics import ConvergenceReport, TimedReport
from repro.bgp.policy import LowestCostPolicy, SelectionPolicy
from repro.core.price_node import PriceComputingNode, UpdateMode
from repro.exceptions import MechanismError
from repro.graphs.asgraph import ASGraph
from repro.mechanism.vcg import PriceTable, compute_price_table
from repro.types import Cost, NodeId, PathTuple

PairKey = Tuple[NodeId, NodeId]


@dataclass
class Mismatch:
    """One disagreement between distributed and centralized results."""

    kind: str  # "path" or "price"
    source: NodeId
    destination: NodeId
    k: Optional[NodeId]
    distributed: object
    centralized: object

    def __str__(self) -> str:
        where = f"({self.source} -> {self.destination}"
        if self.k is not None:
            where += f", k={self.k}"
        where += ")"
        return (
            f"{self.kind} mismatch {where}: distributed={self.distributed!r} "
            f"centralized={self.centralized!r}"
        )


@dataclass
class VerificationReport:
    """Outcome of the distributed-vs-centralized comparison."""

    pairs_checked: int
    prices_checked: int
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def raise_on_mismatch(self) -> None:
        if self.mismatches:
            preview = "; ".join(str(m) for m in self.mismatches[:5])
            raise MechanismError(
                f"{len(self.mismatches)} mismatches vs centralized reference: "
                f"{preview}"
            )


@dataclass
class DistributedPriceResult:
    """Everything the distributed protocol computed."""

    graph: ASGraph
    engine: Union[SynchronousEngine, AsynchronousEngine, TimedEngine]
    report: Union[ConvergenceReport, TimedReport]
    mode: UpdateMode

    def node(self, node_id: NodeId) -> PriceComputingNode:
        node = self.engine.nodes[node_id]
        assert isinstance(node, PriceComputingNode)
        return node

    def path(self, source: NodeId, destination: NodeId) -> PathTuple:
        entry = self.node(source).route(destination)
        if entry is None:
            raise MechanismError(
                f"distributed protocol has no route {source} -> {destination}"
            )
        return entry.path

    def cost(self, source: NodeId, destination: NodeId) -> Cost:
        entry = self.node(source).route(destination)
        if entry is None:
            raise MechanismError(
                f"distributed protocol has no route {source} -> {destination}"
            )
        return entry.cost

    def price(self, k: NodeId, source: NodeId, destination: NodeId) -> Cost:
        return self.node(source).price(k, destination)

    def price_rows(self) -> Dict[PairKey, Dict[NodeId, Cost]]:
        """All price rows, shaped like the centralized PriceTable rows."""
        rows: Dict[PairKey, Dict[NodeId, Cost]] = {}
        for node_id, node in self.engine.nodes.items():
            for destination, row in node.price_rows.items():
                rows[(node_id, destination)] = dict(row)
        return rows

    @property
    def stages(self) -> int:
        return self.report.stages


def distributed_mechanism(
    graph: ASGraph,
    mode: UpdateMode = UpdateMode.MONOTONE,
    policy: Optional[SelectionPolicy] = None,
    asynchronous: bool = False,
    seed: int = 0,
    max_stages: Optional[int] = None,
    obs: Optional[obs_mod.Obs] = None,
    *,
    protocol: str = "delta",
) -> DistributedPriceResult:
    """Run the full FPSS protocol (routes + prices) to quiescence.

    *obs* names an explicit :class:`repro.obs.Obs` observer, forwarded
    to the protocol engine so the run's stage/message/table metrics are
    recorded; ``None`` reports to the global default observer iff
    observability is enabled.

    *protocol* selects the BGP transport: ``delta`` (incremental row
    exchanges, the default) or ``full`` (literal Sect. 5 full routing
    tables); the converged result is bit-identical either way.
    """
    if protocol not in ("delta", "full"):
        raise MechanismError(
            f"unknown transport protocol {protocol!r}; expected 'delta' or 'full'"
        )
    policy = policy or LowestCostPolicy()
    if sanitize.enabled():
        # Theorem 1 precondition: without biconnectivity some k-avoiding
        # path is missing and the prices the protocol would converge to
        # are undefined (monopoly positions).
        sanitize.check_biconnected(graph)

    def factory(node_id: NodeId, cost: Cost, pol: SelectionPolicy) -> PriceComputingNode:
        return PriceComputingNode(node_id, cost, pol, mode=mode)

    incremental = protocol != "full"
    engine: Union[SynchronousEngine, AsynchronousEngine]
    if asynchronous:
        engine = AsynchronousEngine(
            graph,
            policy=policy,
            node_factory=factory,
            seed=seed,
            incremental=incremental,
            obs=obs,
        )
        engine.initialize()
        report = engine.run()
    else:
        engine = SynchronousEngine(
            graph,
            policy=policy,
            node_factory=factory,
            incremental=incremental,
            obs=obs,
        )
        engine.initialize()
        report = engine.run(max_stages=max_stages)
    if sanitize.enabled():
        # End-to-end validation of the converged state: every selected
        # route re-verified against Dijkstra, every price against the
        # Theorem 1 identity recomputed from scratch.
        sanitize.check_distributed_prices(
            graph,
            {node_id: node.routes for node_id, node in engine.nodes.items()},
            {
                node_id: getattr(node, "price_rows", {})
                for node_id, node in engine.nodes.items()
            },
        )
    return DistributedPriceResult(graph=graph, engine=engine, report=report, mode=mode)


def timed_mechanism(
    graph: ASGraph,
    mode: UpdateMode = UpdateMode.MONOTONE,
    policy: Optional[SelectionPolicy] = None,
    *,
    seed: int = 0,
    delay: Union[str, DelayModel, None] = None,
    mrai: Union[dict, MRAIConfig, None] = None,
    max_events: Optional[int] = None,
    obs: Optional[obs_mod.Obs] = None,
) -> DistributedPriceResult:
    """Run the FPSS protocol on the discrete-event timed substrate.

    *delay* is the seeded per-link delay distribution (default: the
    asynchronous engine's uniform [0.1, 1.0] jitter), given either as a
    :class:`DelayModel` or as a ``"kind:params"`` spec string
    (:func:`repro.bgp.delays.parse_delay`); *mrai* is the optional
    hold-down timer configuration, an :class:`MRAIConfig` or a keyword
    dict for one -- see :mod:`repro.bgp.timed`.  Whatever the timing,
    the converged routes
    and prices are the same LCPs and VCG payments the centralized
    reference computes (:func:`verify_against_centralized`); timing only
    moves the virtual-clock and transport accounting in the report.
    """
    policy = policy or LowestCostPolicy()
    if sanitize.enabled():
        sanitize.check_biconnected(graph)

    def factory(node_id: NodeId, cost: Cost, pol: SelectionPolicy) -> PriceComputingNode:
        return PriceComputingNode(node_id, cost, pol, mode=mode)

    engine = TimedEngine(
        graph,
        policy=policy,
        node_factory=factory,
        seed=seed,
        delay=delay,
        mrai=mrai,
        obs=obs,
    )
    engine.initialize()
    report = engine.run(max_events=max_events)
    if sanitize.enabled():
        sanitize.check_distributed_prices(
            graph,
            {node_id: node.routes for node_id, node in engine.nodes.items()},
            {
                node_id: getattr(node, "price_rows", {})
                for node_id, node in engine.nodes.items()
            },
        )
    return DistributedPriceResult(graph=graph, engine=engine, report=report, mode=mode)


def verify_against_centralized(
    result: DistributedPriceResult,
    table: Optional[PriceTable] = None,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-9,
) -> VerificationReport:
    """Compare all routes and prices with the centralized reference.

    Routes must match *exactly* (identical tie-breaking by design);
    prices are compared with floating-point tolerance because the
    distributed arithmetic associates additions differently.
    """
    table = table or compute_price_table(result.graph)
    routes = table.routes
    report = VerificationReport(pairs_checked=0, prices_checked=0)
    for destination in result.graph.nodes:
        tree = routes.tree(destination)
        for source in result.graph.nodes:
            if source == destination:
                continue
            report.pairs_checked += 1
            expected_path = tree.path(source)
            actual_path = result.path(source, destination)
            if actual_path != expected_path:
                report.mismatches.append(
                    Mismatch(
                        kind="path",
                        source=source,
                        destination=destination,
                        k=None,
                        distributed=actual_path,
                        centralized=expected_path,
                    )
                )
                continue
            expected_row = table.row(source, destination)
            actual_row = result.node(source).price_rows.get(destination, {})
            keys = set(expected_row) | set(actual_row)
            for k in sorted(keys):
                report.prices_checked += 1
                expected = expected_row.get(k)
                actual = actual_row.get(k)
                if expected is None or actual is None:
                    report.mismatches.append(
                        Mismatch("price", source, destination, k, actual, expected)
                    )
                    continue
                if math.isinf(actual) or not math.isclose(
                    actual, expected, rel_tol=rel_tol, abs_tol=abs_tol
                ):
                    report.mismatches.append(
                        Mismatch("price", source, destination, k, actual, expected)
                    )
    return report


def _warn_renamed(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; call repro.api.run(...) or "
        f"repro.core.protocol.{new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_distributed_mechanism(*args, **kwargs) -> DistributedPriceResult:
    """Deprecated alias for :func:`distributed_mechanism`."""
    _warn_renamed("run_distributed_mechanism", "distributed_mechanism")
    return distributed_mechanism(*args, **kwargs)


def run_timed_mechanism(*args, **kwargs) -> DistributedPriceResult:
    """Deprecated alias for :func:`timed_mechanism`."""
    _warn_renamed("run_timed_mechanism", "timed_mechanism")
    return timed_mechanism(*args, **kwargs)
