"""The price-computing BGP node: Figure 3's algorithm.

A :class:`PriceComputingNode` is a plain path-vector node plus, per
destination ``j``, a price row ``k -> p^k_ij`` over the transit nodes of
its selected path.  Rows ride on the ordinary advertisement exchange --
there are no other messages.

Two update modes are provided:

* :attr:`UpdateMode.MONOTONE` -- the paper's algorithm: rows start at
  infinity, entries only decrease (min-updates with the case-(i)-(iv)
  candidates), and a row is reset to infinity whenever the selected
  route to its destination changes ("convergence must start over
  whenever there is a route change", Sect. 6).
* :attr:`UpdateMode.RECOMPUTE` -- a stateless fixpoint variant: each
  stage the row is recomputed from scratch as the minimum over the
  stored neighbor advertisements.  Same fixpoint by Lemma 1; useful as
  an independent cross-check of the monotone algorithm.

Both modes converge to the centralized Theorem 1 prices within
``max(d, d')`` stages on static instances; the test suite asserts
agreement between the modes, the centralized table, and the bound.
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Optional, Set

from repro.bgp.messages import RouteAdvertisement
from repro.bgp.node import BGPNode
from repro.bgp.policy import SelectionPolicy
from repro.core.cases import price_candidates
from repro.types import Cost, NodeId

INF = float("inf")


class UpdateMode(enum.Enum):
    """How the price rows are maintained across stages."""

    MONOTONE = "monotone"
    RECOMPUTE = "recompute"


class PriceComputingNode(BGPNode):
    """A BGP node that additionally computes the VCG price rows."""

    #: Sect. 6: price convergence must start over on network changes --
    #: price state derived from pre-event advertisements can undercut
    #: the new true prices, and the monotone minimum never recovers.
    RESTART_ON_EVENT = True

    def __init__(
        self,
        node_id: NodeId,
        declared_cost: Cost,
        policy: Optional[SelectionPolicy] = None,
        mode: UpdateMode = UpdateMode.MONOTONE,
        literal_child_formula: bool = False,
    ) -> None:
        super().__init__(node_id, declared_cost, policy)
        self.mode = mode
        # Ablation knob (E15): evaluate Eq. 3 exactly as printed.
        self.literal_child_formula = literal_child_formula
        # destination -> {transit node -> current price estimate}
        self.price_rows: Dict[NodeId, Dict[NodeId, Cost]] = {}

    # ------------------------------------------------------------------
    # Hook from the base decision process
    # ------------------------------------------------------------------
    def _after_decide(
        self,
        changed_destinations: Set[NodeId],
        dirty_destinations: Optional[Set[NodeId]] = None,
    ) -> Set[NodeId]:
        # A destination's price row is a function of that destination's
        # stored advertisements and selected route alone, so with a
        # dirty set only ``dirty | changed`` rows can move; a full
        # decision sweeps every route.  Returns the destinations whose
        # row changed (the advertised price slot), so the outgoing-row
        # cache refreshes exactly those.
        rows_changed: Set[NodeId] = set()
        if dirty_destinations is None:
            # Drop rows for destinations we no longer route to.
            for destination in list(self.price_rows):
                if destination not in self.routes:
                    del self.price_rows[destination]
                    rows_changed.add(destination)
            candidates = sorted(self.routes)
        else:
            for destination in sorted(changed_destinations):
                if destination not in self.routes and destination in self.price_rows:
                    del self.price_rows[destination]
                    rows_changed.add(destination)
            scope = set(dirty_destinations) | set(changed_destinations)
            candidates = [d for d in sorted(scope) if d in self.routes]
        for destination in candidates:
            entry = self.routes[destination]
            transit = entry.transit
            previous_row = self.price_rows.get(destination)
            if not transit:
                if previous_row != {}:
                    rows_changed.add(destination)
                self.price_rows[destination] = {}
                continue
            row_moved = False
            if self.mode is UpdateMode.RECOMPUTE:
                row = {k: INF for k in transit}
            elif destination in changed_destinations or previous_row is None:
                # Monotone mode: the row restarts whenever the route
                # changes (its entries are tied to the current c(i, j)).
                row = {k: INF for k in transit}
            else:
                row = previous_row
            for neighbor in self.rib_in.neighbors():
                advert = self.rib_in.advert(neighbor, destination)
                if advert is not None and advert.generation < self.generation:
                    # Pre-restart price information priced the old
                    # network; using it could undercut the new true
                    # prices.  (Route selection still uses such adverts
                    # -- path-vector routing self-corrects.)
                    continue
                candidates_k = price_candidates(
                    self_id=self.node_id,
                    self_cost=self.declared_cost,
                    my_path=entry.path,
                    my_cost=entry.cost,
                    my_node_costs=entry.node_costs,
                    neighbor=neighbor,
                    advert=advert,
                    literal_child_formula=self.literal_child_formula,
                )
                for k, value in candidates_k.items():
                    if value < row.get(k, INF):
                        row[k] = value
                        row_moved = True
            if row is not previous_row:
                # Rebuilt from scratch: compare content, not identity
                # (an identical recomputation must not dirty the row).
                row_moved = row != previous_row
            if row_moved:
                rows_changed.add(destination)
            self.price_rows[destination] = row
        return rows_changed

    # ------------------------------------------------------------------
    # Advertisement contents
    # ------------------------------------------------------------------
    def _prices_for(self, destination: NodeId) -> Mapping[NodeId, Cost]:
        return dict(self.price_rows.get(destination, {}))

    # ------------------------------------------------------------------
    # Introspection / dynamics
    # ------------------------------------------------------------------
    def price(self, k: NodeId, destination: NodeId) -> Cost:
        """Current estimate of ``p^k_{self,destination}`` (0 when ``k``
        is not transit on the selected path)."""
        return self.price_rows.get(destination, {}).get(k, 0.0)

    def prices_converged(self) -> bool:
        """Whether every price entry is finite (necessary, not
        sufficient, for convergence; the engine detects quiescence)."""
        return all(
            value != INF
            for row in self.price_rows.values()
            for value in row.values()
        )

    def reset_prices(self) -> None:
        """Restart the price computation (the paper's response to a
        route change anywhere in the network)."""
        for destination, entry in self.routes.items():
            self.price_rows[destination] = {k: INF for k in entry.transit}

    def restart(self) -> None:
        super().restart()
        self.price_rows = {}
