"""Shared type aliases and small value types used across the library.

The conventions here mirror Section 3 of the paper:

* A *node* is an Autonomous System, identified by an ``int`` AS number.
* A *cost* is the per-packet transit cost ``c_k`` declared by node ``k``;
  costs are non-negative floats and may be ``math.inf`` when a node is
  (hypothetically) removed, as in the Green-Laffont argument of Theorem 1.
* A *path* is the sequence of nodes from a source to a destination,
  inclusive of both endpoints.  The cost of a path counts only its
  *transit* (intermediate) nodes: ``I_i = I_j = 0`` in the paper's
  indicator notation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple

NodeId = int
"""An AS number."""

Cost = float
"""A per-packet transit cost ``c_k``."""

Edge = Tuple[NodeId, NodeId]
"""An undirected interconnection between two ASes."""

PathTuple = Tuple[NodeId, ...]
"""A path as an immutable node sequence, endpoints included."""

CostVector = Mapping[NodeId, Cost]
"""The declared-cost vector ``c`` keyed by node."""

MutableCostVector = Dict[NodeId, Cost]

PriceKey = Tuple[NodeId, NodeId, NodeId]
"""``(k, i, j)``: transit node, source, destination for a price ``p^k_ij``."""

AdjacencyList = Mapping[NodeId, Sequence[NodeId]]

INFINITY: Cost = float("inf")
"""The cost used for unreachable paths and hypothetical node removal."""

EPSILON: float = 1e-9
"""The library-wide tolerance for comparing derived cost/price values.

Raw declared costs and canonically accumulated path costs are exact and
may be compared with ``==`` (the engines accumulate bit-identically by
design; see :mod:`repro.routing.tiebreak`).  Anything *derived* through
differently-associated arithmetic -- prices, utilities, welfare sums --
must be compared through :func:`costs_close` / :func:`is_zero_cost`
instead; the lint rule RPR001 enforces this.
"""


def is_finite_cost(value: Cost) -> bool:
    """Return ``True`` when *value* is a usable (finite, non-NaN) cost."""
    return math.isfinite(value)


def costs_close(a: Cost, b: Cost, *, eps: float = EPSILON) -> bool:
    """Whether two derived cost/price values are equal up to tolerance.

    Uses both a relative and an absolute tolerance of *eps*, so values
    near zero compare sensibly.  Infinities compare equal only to
    themselves; NaN compares equal to nothing.
    """
    if a == b:  # fast path and +-inf identity
        return True
    return math.isclose(a, b, rel_tol=eps, abs_tol=eps)


def is_zero_cost(value: Cost, *, eps: float = EPSILON) -> bool:
    """Whether a derived cost/price value is zero up to tolerance."""
    return -eps <= value <= eps


def validate_cost(value: Cost, *, what: str = "cost") -> Cost:
    """Validate a declared transit cost and return it as a ``float``.

    Costs must be finite and non-negative; the paper's model does not
    admit negative transit costs (a node cannot profit from merely
    existing) and reserves infinity for the removal construction used in
    the uniqueness proof.
    """
    cost = float(value)
    if math.isnan(cost):
        raise ValueError(f"{what} may not be NaN")
    if cost < 0:
        raise ValueError(f"{what} must be non-negative, got {cost!r}")
    if math.isinf(cost):
        raise ValueError(f"{what} must be finite, got infinity")
    return cost


ListOfPaths = List[PathTuple]
