"""AS business relationships: customer, peer, provider.

A :class:`RelationshipMap` labels every link of an AS graph from each
endpoint's perspective; the labels are kept consistent (my customer
sees me as its provider; peering is symmetric).  The
:func:`annotate_isp_hierarchy` generator derives a plausible labeling
for the two-tier ISP-like topologies: links inside the core are peer
links, links from core (or earlier-created stubs) to later stubs make
the earlier node the provider.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Mapping, Tuple

from repro.exceptions import GraphError
from repro.graphs.asgraph import ASGraph
from repro.types import NodeId

Edge = Tuple[NodeId, NodeId]


class Relationship(enum.Enum):
    """How a neighbor relates to *me* commercially."""

    CUSTOMER = "customer"   # they pay me; I carry their transit
    PEER = "peer"           # settlement-free; we exchange customer routes
    PROVIDER = "provider"   # I pay them; they carry my transit

    @property
    def inverse(self) -> "Relationship":
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


#: Gao-Rexford route preference: customer routes beat peer routes beat
#: provider routes (revenue beats free beats paid).
PREFERENCE_RANK: Dict[Relationship, int] = {
    Relationship.CUSTOMER: 0,
    Relationship.PEER: 1,
    Relationship.PROVIDER: 2,
}


class RelationshipMap:
    """Consistent per-link relationship labels for an AS graph."""

    def __init__(
        self,
        graph: ASGraph,
        labels: Mapping[Edge, Relationship],
    ) -> None:
        """*labels* maps directed pairs ``(u, v)`` to how ``v`` relates
        to ``u``; each undirected link needs exactly one direction
        labeled (the other is inferred by inversion)."""
        self.graph = graph
        self._labels: Dict[Edge, Relationship] = {}
        for (u, v), relationship in labels.items():
            if not graph.has_edge(u, v):
                raise GraphError(f"no link between {u} and {v}")
            self._labels[(u, v)] = relationship
            inverse = relationship.inverse
            existing = self._labels.get((v, u))
            if existing is not None and existing is not inverse:
                raise GraphError(
                    f"inconsistent labels on link ({u}, {v}): "
                    f"{relationship.value} vs {existing.value}"
                )
            self._labels[(v, u)] = inverse
        for u, v in graph.edges:
            if (u, v) not in self._labels:
                raise GraphError(f"link ({u}, {v}) is unlabeled")

    def relationship(self, me: NodeId, neighbor: NodeId) -> Relationship:
        """How *neighbor* relates to *me*."""
        try:
            return self._labels[(me, neighbor)]
        except KeyError:
            raise GraphError(f"no relationship between {me} and {neighbor}") from None

    def customers(self, node: NodeId) -> Tuple[NodeId, ...]:
        return tuple(
            sorted(
                neighbor
                for neighbor in self.graph.neighbors(node)
                if self.relationship(node, neighbor) is Relationship.CUSTOMER
            )
        )

    def providers(self, node: NodeId) -> Tuple[NodeId, ...]:
        return tuple(
            sorted(
                neighbor
                for neighbor in self.graph.neighbors(node)
                if self.relationship(node, neighbor) is Relationship.PROVIDER
            )
        )

    def peers(self, node: NodeId) -> Tuple[NodeId, ...]:
        return tuple(
            sorted(
                neighbor
                for neighbor in self.graph.neighbors(node)
                if self.relationship(node, neighbor) is Relationship.PEER
            )
        )

    def is_provider_customer_acyclic(self) -> bool:
        """Whether the provider->customer digraph is acyclic (the
        Gao-Rexford hierarchy condition guaranteeing convergence)."""
        # Kahn's algorithm over provider -> customer edges.
        indegree: Dict[NodeId, int] = {node: 0 for node in self.graph.nodes}
        for node in self.graph.nodes:
            for customer in self.customers(node):
                indegree[customer] += 1
        queue = [node for node, degree in indegree.items() if degree == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for customer in self.customers(node):
                indegree[customer] -= 1
                if indegree[customer] == 0:
                    queue.append(customer)
        return seen == len(indegree)


def annotate_isp_hierarchy(
    graph: ASGraph,
    core_size: int,
) -> RelationshipMap:
    """Label an ISP-like topology: the first *core_size* node ids form a
    full peer mesh among themselves; on every other link, the
    lower-numbered endpoint (created earlier, higher in the hierarchy)
    is the provider of the higher-numbered one.

    The resulting provider graph is acyclic by construction, satisfying
    the Gao-Rexford convergence condition.
    """
    if not 0 < core_size <= graph.num_nodes:
        raise GraphError(f"core size {core_size} out of range")
    labels: Dict[Edge, Relationship] = {}
    for u, v in graph.edges:  # u < v by normalization
        if u < core_size and v < core_size:
            labels[(u, v)] = Relationship.PEER
        else:
            labels[(u, v)] = Relationship.CUSTOMER  # v is u's customer
    return RelationshipMap(graph, labels)
