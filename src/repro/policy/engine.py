"""Path-vector routing under Gao-Rexford policies.

The same stage discipline as :class:`repro.bgp.engine.SynchronousEngine`
with the two policy ingredients real BGP has and the paper's model
omits:

* **Selective export.**  A route learned from a customer is exported to
  everyone; routes learned from peers or providers are exported only to
  customers.  Export is therefore *per neighbor*, so the engine keeps a
  per-session published table.
* **Relationship-ranked selection.**  Customer routes are preferred
  over peer routes over provider routes; ties fall back to the paper's
  (cost, hops, path) order, so the comparison with pure LCP routing is
  apples to apples.

Under the Gao-Rexford conditions (acyclic provider hierarchy, the
preference ranking above) the protocol provably converges; the engine
asserts convergence rather than assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.bgp.messages import RouteAdvertisement
from repro.bgp.node import BGPNode
from repro.bgp.policy import LowestCostPolicy
from repro.bgp.table import RouteEntry
from repro.exceptions import ConvergenceError
from repro.graphs.asgraph import ASGraph
from repro.policy.relationships import (
    PREFERENCE_RANK,
    Relationship,
    RelationshipMap,
)
from repro.types import Cost, NodeId, PathTuple


class PolicyNode(BGPNode):
    """A BGP node applying Gao-Rexford selection and export rules."""

    def __init__(
        self,
        node_id: NodeId,
        declared_cost: Cost,
        relationships: RelationshipMap,
    ) -> None:
        super().__init__(node_id, declared_cost, LowestCostPolicy())
        self.relationships = relationships

    # --- selection: customer > peer > provider, then LCP order --------
    def _select_route(self, destination: NodeId) -> Optional[RouteEntry]:
        best_key = None
        best_entry: Optional[RouteEntry] = None
        for neighbor, advert in sorted(self.rib_in.adverts_for(destination).items()):
            if self.node_id in advert.path:
                continue
            rank = PREFERENCE_RANK[
                self.relationships.relationship(self.node_id, neighbor)
            ]
            extension_cost = 0.0 if advert.sender == destination else advert.sender_cost
            cost = advert.cost + extension_cost
            path = (self.node_id,) + advert.path
            key = (rank,) + self.policy.key(cost, path)
            if best_key is None or key < best_key:
                best_key = key
                node_costs = dict(advert.node_costs)
                node_costs[self.node_id] = self.declared_cost
                best_entry = RouteEntry(path=path, cost=cost, node_costs=node_costs)
        return best_entry

    # --- export: customer routes to all; others to customers only -----
    def exportable_to(self, neighbor: NodeId, destination: NodeId) -> bool:
        """Whether the selected route for *destination* may be announced
        to *neighbor* under valley-free export."""
        if destination == self.node_id:
            return True  # everyone may reach me
        entry = self.routes.get(destination)
        if entry is None:
            return False
        learned_from = entry.next_hop
        learned_rel = self.relationships.relationship(self.node_id, learned_from)
        if learned_rel is Relationship.CUSTOMER:
            return True
        # peer/provider routes go to paying customers only
        return (
            self.relationships.relationship(self.node_id, neighbor)
            is Relationship.CUSTOMER
        )

    def export_table(self, neighbor: NodeId) -> Tuple[RouteAdvertisement, ...]:
        adverts: List[RouteAdvertisement] = [self.self_advertisement()]
        for destination in sorted(self.routes):
            if self.exportable_to(neighbor, destination):
                adverts.append(self._advert_for(destination))
        return tuple(adverts)


@dataclass
class PolicyRoutingResult:
    """Converged routes under valley-free policy routing."""

    graph: ASGraph
    relationships: RelationshipMap
    engine: "PolicyEngine"
    stages: int

    def path(self, source: NodeId, destination: NodeId) -> Optional[PathTuple]:
        entry = self.engine.nodes[source].route(destination)
        return None if entry is None else entry.path

    def routes_by_pair(self) -> Dict[Tuple[NodeId, NodeId], PathTuple]:
        result: Dict[Tuple[NodeId, NodeId], PathTuple] = {}
        for source, node in self.engine.nodes.items():
            for destination, entry in node.routes.items():
                result[(source, destination)] = entry.path
        return result


class PolicyEngine:
    """Synchronous stages with per-session (per-neighbor) export."""

    def __init__(self, graph: ASGraph, relationships: RelationshipMap) -> None:
        self.graph = graph
        self.relationships = relationships
        self.nodes: Dict[NodeId, PolicyNode] = {
            node_id: PolicyNode(node_id, graph.cost(node_id), relationships)
            for node_id in graph.nodes
        }
        self._published: Dict[Tuple[NodeId, NodeId], Tuple[RouteAdvertisement, ...]] = {}
        self._pending: Set[NodeId] = set()
        self.stage_count = 0

    def initialize(self) -> None:
        self._pending = set(self.nodes)
        for sender_id, sender in self.nodes.items():
            for neighbor in self.graph.neighbors(sender_id):
                self._published[(sender_id, neighbor)] = sender.export_table(neighbor)

    def step(self) -> int:
        """One stage; returns how many sessions re-announced."""
        self.stage_count += 1
        sessions_changed = 0
        for sender_id in sorted(self._pending):
            for neighbor in sorted(self.graph.neighbors(sender_id)):
                table = self._published[(sender_id, neighbor)]
                self.nodes[neighbor].receive_table(sender_id, table)
        changed: Set[NodeId] = set()
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            node.decide()
            for neighbor in sorted(self.graph.neighbors(node_id)):
                table = node.export_table(neighbor)
                if table != self._published.get((node_id, neighbor)):
                    self._published[(node_id, neighbor)] = table
                    changed.add(node_id)
                    sessions_changed += 1
        self._pending = changed
        return sessions_changed

    def run(self, max_stages: Optional[int] = None) -> int:
        """Run to quiescence; returns the stage count."""
        if not self._published:
            self.initialize()
        limit = max_stages if max_stages is not None else 6 * self.graph.num_nodes + 32
        stages = 0
        while self._pending:
            if stages >= limit:
                raise ConvergenceError(stages=stages, limit=limit)
            if self.step():
                stages = self.stage_count
            else:
                break
        return self.stage_count


def run_policy_routing(
    graph: ASGraph,
    relationships: RelationshipMap,
    max_stages: Optional[int] = None,
) -> PolicyRoutingResult:
    """Run valley-free policy routing to convergence."""
    engine = PolicyEngine(graph, relationships)
    engine.initialize()
    stages = engine.run(max_stages=max_stages)
    return PolicyRoutingResult(
        graph=graph, relationships=relationships, engine=engine, stages=stages
    )
