"""Valley-free path validation.

A path is *valley-free* when it climbs zero or more customer-to-provider
links, optionally crosses one peer link at the top, then descends zero
or more provider-to-customer links.  Equivalently: nobody provides free
transit -- an AS forwards between two neighbors only if at least one of
them is its customer.
"""

from __future__ import annotations

from typing import Sequence

from repro.policy.relationships import Relationship, RelationshipMap
from repro.types import NodeId

# Phases of a valley-free walk.
_CLIMBING = 0
_PEAKED = 1     # crossed the single allowed peer link
_DESCENDING = 2


def is_valley_free(path: Sequence[NodeId], relationships: RelationshipMap) -> bool:
    """Whether *path* respects the valley-free export discipline."""
    if len(path) < 2:
        return True
    phase = _CLIMBING
    for u, v in zip(path, path[1:]):
        rel = relationships.relationship(u, v)  # how v relates to u
        if rel is Relationship.PROVIDER:
            step = "up"
        elif rel is Relationship.PEER:
            step = "peer"
        else:
            step = "down"
        if phase == _CLIMBING:
            if step == "up":
                continue
            phase = _PEAKED if step == "peer" else _DESCENDING
        elif phase == _PEAKED:
            if step == "down":
                phase = _DESCENDING
            else:
                return False
        else:  # descending
            if step != "down":
                return False
    return True


def transit_allowed(
    node: NodeId,
    from_neighbor: NodeId,
    to_neighbor: NodeId,
    relationships: RelationshipMap,
) -> bool:
    """Footnote 2 of the paper, as a predicate: an AS carries traffic
    between two neighbors only if at least one of them is its customer."""
    return (
        relationships.relationship(node, from_neighbor) is Relationship.CUSTOMER
        or relationships.relationship(node, to_neighbor) is Relationship.CUSTOMER
    )
