"""Policy routing: the realism the paper explicitly sets aside.

Section 1/2 of the paper acknowledges two simplifications: "BGP allows
an AS to choose routes according to any one of a wide variety of local
policies; LCP routing is just one example", and (footnote 2) "Most ASs
do not accept transit traffic from peers, only from customers."
Extending the mechanism to policy routing is the Section 7 future-work
direction (picked up by Feigenbaum, Sami, and Shenker [7]).

This package implements the standard model of those policies --
Gao-Rexford customer/peer/provider relationships with valley-free
export -- on top of the same path-vector machinery, so the gap the
paper leaves can be *measured* (experiment E16): how much reachability
and cost efficiency valley-free routing gives up relative to the
paper's unrestricted LCPs, and that the Gao-Rexford preference rules
still converge.
"""

from repro.policy.relationships import (
    Relationship,
    RelationshipMap,
    annotate_isp_hierarchy,
)
from repro.policy.valley_free import is_valley_free
from repro.policy.engine import PolicyEngine, PolicyNode, run_policy_routing

__all__ = [
    "Relationship",
    "RelationshipMap",
    "annotate_isp_hierarchy",
    "is_valley_free",
    "PolicyEngine",
    "PolicyNode",
    "run_policy_routing",
]
