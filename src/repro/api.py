"""The stable public API of the ``repro`` library.

Import from here when you want the supported surface and nothing else;
internal module layout may change between releases, this facade will
not.  One symbol per concept:

* :class:`ASGraph` -- the AS graph model: nodes with per-packet transit
  costs, undirected links.
* :func:`all_pairs_lcp` -- centralized selected lowest-cost paths for
  all ordered pairs (``engine=``/``sanitize=``/``obs=`` keyword-only).
* :func:`compute_price_table` -- the centralized Theorem 1 VCG prices
  (same keyword-only knobs, same order, same defaults).
* :func:`get_engine` -- instantiate a computation backend from the
  engine registry by name (``reference`` | ``scipy`` | ``parallel`` |
  ``incremental``).
* :func:`run_distributed_mechanism` -- the paper's contribution: routes
  *and* prices computed by the BGP-based protocol of Section 6.
* :func:`verify_against_centralized` -- compare a distributed result
  with the centralized reference, route by route and price by price.
* :func:`run_dynamic_scenario` -- Sect. 6 dynamics: drive a converged
  network through a scripted event sequence, reconverging and verifying
  after every event (``engine="incremental"`` makes the per-epoch
  verification warm-start from cached route trees).
* :func:`run_timed_mechanism` -- the protocol on the discrete-event
  timed substrate (:class:`TimedEngine`): seeded per-link delay
  distributions (:class:`ConstantDelay` | :class:`UniformDelay` |
  :class:`LogNormalDelay`) and optional :class:`MRAIConfig` hold-down
  timers; same converged model, virtual time replaces stages.
* :func:`run_timed_scenario` -- network events scheduled at virtual
  timestamps, interleaved with in-flight protocol traffic (messages on
  a failing link are lost), verified against the centralized mechanism
  on the final topology.
* :func:`fig1_graph` -- the paper's Figure 1 worked example.
* :func:`analyze_paths` -- the interprocedural determinism/contract
  analyzer (``repro.devtools.flow``); returns the contract findings and
  per-function effect summaries for a source tree.
* :mod:`obs` -- the observability layer (spans, counters, gauges,
  trace sinks); off by default with zero overhead.

Quickstart::

    from repro import api

    graph = api.fig1_graph()
    table = api.compute_price_table(graph)            # Theorem 1
    result = api.run_distributed_mechanism(graph)     # BGP-based, Sect. 6
    api.verify_against_centralized(result, table).raise_on_mismatch()

    with api.obs.observed() as observer:              # record a run
        api.run_distributed_mechanism(graph)
    observer.counter_total(api.obs.names.MESSAGES)    # paper measure 2

Dynamics quickstart::

    from repro.bgp.events import CostChange, LinkFailure, LinkRecovery

    events = [LinkFailure(0, 1), LinkRecovery(0, 1), CostChange(2, 5.0)]
    run = api.run_dynamic_scenario(graph, events, engine="incremental")
    assert run.all_ok and run.all_within_bound

Timed quickstart::

    result = api.run_timed_mechanism(
        graph,
        seed=7,
        delay=api.LogNormalDelay(-2.0, 0.8),
        mrai=api.MRAIConfig(1.0, mode="peer", jitter=0.25),
    )
    api.verify_against_centralized(result).raise_on_mismatch()
    result.report.convergence_time                    # virtual seconds
"""

from __future__ import annotations

from repro import obs
from repro.bgp.delays import (
    ConstantDelay,
    DelayModel,
    LogNormalDelay,
    UniformDelay,
    parse_delay,
)
from repro.bgp.timed import MRAIConfig, TimedEngine
from repro.core.dynamics import run_dynamic_scenario, run_timed_scenario
from repro.devtools.flow import analyze_paths
from repro.core.protocol import (
    run_distributed_mechanism,
    run_timed_mechanism,
    verify_against_centralized,
)
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import fig1_graph
from repro.mechanism.vcg import compute_price_table
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.engines import get_engine

__all__ = [
    "ASGraph",
    "ConstantDelay",
    "DelayModel",
    "LogNormalDelay",
    "MRAIConfig",
    "TimedEngine",
    "UniformDelay",
    "all_pairs_lcp",
    "analyze_paths",
    "compute_price_table",
    "fig1_graph",
    "get_engine",
    "obs",
    "parse_delay",
    "run_distributed_mechanism",
    "run_dynamic_scenario",
    "run_timed_mechanism",
    "run_timed_scenario",
    "verify_against_centralized",
]
