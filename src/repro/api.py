"""The stable public API of the ``repro`` library.

Import from here when you want the supported surface and nothing else;
internal module layout may change between releases, this facade will
not.  One symbol per concept:

* :class:`ASGraph` -- the AS graph model: nodes with per-packet transit
  costs, undirected links.
* :func:`all_pairs_lcp` -- centralized selected lowest-cost paths for
  all ordered pairs (``engine=``/``sanitize=``/``obs=`` keyword-only).
* :func:`compute_price_table` -- the centralized Theorem 1 VCG prices
  (same keyword-only knobs, same order, same defaults).
* :func:`get_engine` -- instantiate a computation backend from the
  engine registry by name (``reference`` | ``scipy`` | ``flat`` |
  ``parallel`` | ``incremental``).
* :func:`run` -- **the** distributed entry point: every substrate and
  scenario shape behind one call.  ``protocol=`` picks the staged
  engine (``"delta"`` incremental transport, ``"full"`` literal
  Sect. 5 tables) or the discrete-event ``"timed"`` substrate;
  ``events=`` switches from one convergence to the Sect. 6 dynamics
  (scripted events, staged; ``(virtual_time, event)`` pairs, timed).
  ``delay=`` takes a :class:`DelayModel` or a ``"uniform:0.1,1.0"``
  spec string, ``mrai=`` an :class:`MRAIConfig` or a keyword dict,
  ``sanitize=`` overrides the global sanitizer switch for the run.
* :func:`verify_against_centralized` -- compare a distributed result
  with the centralized reference, route by route and price by price.
* :func:`fig1_graph` -- the paper's Figure 1 worked example.
* :func:`analyze_paths` -- the interprocedural determinism/contract
  analyzer (``repro.devtools.flow``); returns the contract findings and
  per-function effect summaries for a source tree.
* :mod:`obs` -- the observability layer (spans, counters, gauges,
  trace sinks); off by default with zero overhead.

The four historical runners (``run_distributed_mechanism``,
``run_dynamic_scenario``, ``run_timed_mechanism``,
``run_timed_scenario``) still work but emit ``DeprecationWarning``;
they are thin wrappers over the same implementations :func:`run`
dispatches to.  See the README migration table.

Quickstart::

    from repro import api

    graph = api.fig1_graph()
    table = api.compute_price_table(graph)          # Theorem 1
    result = api.run(graph)                         # BGP-based, Sect. 6
    api.verify_against_centralized(result, table).raise_on_mismatch()

    with api.obs.observed() as observer:            # record a run
        api.run(graph)
    observer.counter_total(api.obs.names.MESSAGES)  # paper measure 2

Dynamics quickstart::

    from repro.bgp.events import CostChange, LinkFailure, LinkRecovery

    events = [LinkFailure(0, 1), LinkRecovery(0, 1), CostChange(2, 5.0)]
    run = api.run(graph, events, engine="incremental")
    assert run.all_ok and run.all_within_bound

Timed quickstart::

    result = api.run(
        graph,
        protocol="timed",
        seed=7,
        delay="lognormal:-2.0,0.8",
        mrai={"interval": 1.0, "mode": "peer", "jitter": 0.25},
    )
    api.verify_against_centralized(result).raise_on_mismatch()
    result.report.convergence_time                  # virtual seconds
"""

from __future__ import annotations

from repro import obs
from repro.bgp.delays import (
    ConstantDelay,
    DelayModel,
    LogNormalDelay,
    UniformDelay,
    parse_delay,
    resolve_delay,
)
from repro.bgp.timed import MRAIConfig, TimedEngine, resolve_mrai
from repro.core.dynamics import (
    dynamic_scenario,
    run_dynamic_scenario,
    run_timed_scenario,
    timed_scenario,
)
from repro.devtools.flow import analyze_paths
from repro.core.protocol import (
    distributed_mechanism,
    run_distributed_mechanism,
    run_timed_mechanism,
    timed_mechanism,
    verify_against_centralized,
)
from repro.core.run import run
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import fig1_graph
from repro.mechanism.vcg import compute_price_table
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.engines import get_engine

__all__ = [
    "ASGraph",
    "ConstantDelay",
    "DelayModel",
    "LogNormalDelay",
    "MRAIConfig",
    "TimedEngine",
    "UniformDelay",
    "all_pairs_lcp",
    "analyze_paths",
    "compute_price_table",
    "distributed_mechanism",
    "dynamic_scenario",
    "fig1_graph",
    "get_engine",
    "obs",
    "parse_delay",
    "resolve_delay",
    "resolve_mrai",
    "run",
    "run_distributed_mechanism",
    "run_dynamic_scenario",
    "run_timed_mechanism",
    "run_timed_scenario",
    "timed_mechanism",
    "timed_scenario",
    "verify_against_centralized",
]
